// Command benchdiff compares two cmd/bench JSON documents and exits
// nonzero on regression, so CI can gate merges on measured performance
// instead of asserted performance.
//
//	benchdiff BENCH_baseline.json /tmp/fresh.json   # exact, virtual time
//	benchdiff -walltol 0.20 base_host.json pr_host.json
//
// The comparison mode is auto-detected from the documents' "schema"
// field:
//
//   - cagvt.bench-baseline/1: every metric is virtual-time derived and
//     deterministic, so ANY difference (including the commit checksum,
//     missing cells, or extra cells) is a failure.
//   - cagvt.bench-host/1: wall-clock and allocation numbers are noisy,
//     so each metric gets a relative tolerance band (-walltol for
//     wall_ns / events_per_sec, -alloctol for allocs / alloc_bytes; a
//     metric may also improve without bound). The harness sweep must
//     report identical=true in the candidate document.
//
// Exit status: 0 all checks passed, 1 regression detected, 2 usage or
// I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Schemas understood by this tool (kept in sync with cmd/bench).
const (
	baselineSchema = "cagvt.bench-baseline/1"
	hostSchema     = "cagvt.bench-host/1"
)

// header is the part of either document needed to pick a mode.
type header struct {
	Schema string `json:"schema"`
}

// cell mirrors cmd/bench's baseline cell.
type cell struct {
	Name     string  `json:"name"`
	Nodes    int     `json:"nodes"`
	Engine   string  `json:"engine,omitempty"`
	Sync     string  `json:"sync,omitempty"`
	GVT      string  `json:"gvt,omitempty"`
	Comm     string  `json:"comm,omitempty"`
	Workload string  `json:"workload"`
	Queue    string  `json:"queue,omitempty"`
	Balance  string  `json:"balance,omitempty"`
	Faults   string  `json:"faults,omitempty"`
	EndTime  float64 `json:"end_time"`
	Seed     uint64  `json:"seed"`

	Committed      int64   `json:"committed"`
	Processed      int64   `json:"processed"`
	WallNanos      int64   `json:"wall_ns"`
	Rate           float64 `json:"rate"`
	Efficiency     float64 `json:"efficiency"`
	GVTRounds      int64   `json:"gvt_rounds"`
	MPIMessages    int64   `json:"mpi_messages"`
	NullMessages   int64   `json:"null_messages,omitempty"`
	Migrations     int64   `json:"migrations,omitempty"`
	CommitChecksum string  `json:"commit_checksum"`
}

type document struct {
	Schema string `json:"schema"`
	Cells  []cell `json:"cells"`
}

// hostCell / hostSweep / hostDoc mirror cmd/bench's host document.
type hostCell struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	EventsPerSec float64 `json:"events_per_sec"`
	PoolNews     int64   `json:"pool_news"`
	PoolRecycled int64   `json:"pool_recycled"`
}

type hostSweep struct {
	Jobs        int     `json:"jobs"`
	Cells       int     `json:"cells"`
	WallNSJobs1 int64   `json:"wall_ns_jobs1"`
	WallNSJobsN int64   `json:"wall_ns_jobsn"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"`
}

type hostDoc struct {
	Schema     string     `json:"schema"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Cells      []hostCell `json:"cells"`
	Sweep      *hostSweep `json:"sweep,omitempty"`
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string, v any) header {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var h header
	if err := json.Unmarshal(data, &h); err != nil {
		fatal("%s: %v", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		fatal("%s: %v", path, err)
	}
	return h
}

// diff accumulates regressions and prints each as it is found.
type diff struct{ failures int }

func (d *diff) failf(format string, args ...any) {
	d.failures++
	fmt.Printf("FAIL: "+format+"\n", args...)
}

// compareBaseline: deterministic documents must match exactly.
func compareBaseline(d *diff, base, cand document) {
	baseByName := map[string]cell{}
	for _, c := range base.Cells {
		baseByName[c.Name] = c
	}
	candByName := map[string]cell{}
	for _, c := range cand.Cells {
		candByName[c.Name] = c
		if _, ok := baseByName[c.Name]; !ok {
			d.failf("%s: cell present only in candidate", c.Name)
		}
	}
	for _, b := range base.Cells {
		c, ok := candByName[b.Name]
		if !ok {
			d.failf("%s: cell missing from candidate", b.Name)
			continue
		}
		if b != c {
			d.failf("%s: virtual metrics diverged:\n  base: %+v\n  cand: %+v", b.Name, b, c)
		}
	}
	if len(base.Cells) != len(cand.Cells) {
		d.failf("cell count changed: base %d, candidate %d", len(base.Cells), len(cand.Cells))
	}
}

// within reports whether cand regressed past base by more than tol,
// where larger values are worse (pass negated values for higher-is-
// better metrics). Improvements always pass.
func within(base, cand, tol float64) bool {
	if cand <= base {
		return true
	}
	if base <= 0 {
		return cand <= 0
	}
	return cand <= base*(1+tol)
}

// compareHost: noisy metrics within tolerance bands; sweep identity
// mandatory.
func compareHost(d *diff, base, cand hostDoc, wallTol, allocTol float64) {
	baseByName := map[string]hostCell{}
	for _, c := range base.Cells {
		baseByName[c.Name] = c
	}
	candByName := map[string]hostCell{}
	for _, c := range cand.Cells {
		candByName[c.Name] = c
		b, ok := baseByName[c.Name]
		if !ok {
			d.failf("%s: host cell present only in candidate", c.Name)
			continue
		}
		if !within(float64(b.WallNS), float64(c.WallNS), wallTol) {
			d.failf("%s: wall_ns regressed %.1f%% (base %d, cand %d, tol %.0f%%)",
				c.Name, 100*(float64(c.WallNS)/float64(b.WallNS)-1), b.WallNS, c.WallNS, 100*wallTol)
		}
		if !within(-b.EventsPerSec, -c.EventsPerSec, wallTol) {
			d.failf("%s: events_per_sec regressed %.1f%% (base %.4g, cand %.4g, tol %.0f%%)",
				c.Name, 100*(1-c.EventsPerSec/b.EventsPerSec), b.EventsPerSec, c.EventsPerSec, 100*wallTol)
		}
		if !within(float64(b.Allocs), float64(c.Allocs), allocTol) {
			d.failf("%s: allocs regressed %.1f%% (base %d, cand %d, tol %.0f%%)",
				c.Name, 100*(float64(c.Allocs)/float64(b.Allocs)-1), b.Allocs, c.Allocs, 100*allocTol)
		}
		if !within(float64(b.AllocBytes), float64(c.AllocBytes), allocTol) {
			d.failf("%s: alloc_bytes regressed %.1f%% (base %d, cand %d, tol %.0f%%)",
				c.Name, 100*(float64(c.AllocBytes)/float64(b.AllocBytes)-1), b.AllocBytes, c.AllocBytes, 100*allocTol)
		}
	}
	for _, b := range base.Cells {
		if _, ok := candByName[b.Name]; !ok {
			d.failf("%s: host cell missing from candidate", b.Name)
		}
	}
	if cand.Sweep != nil && !cand.Sweep.Identical {
		d.failf("harness sweep: -jobs %d output NOT byte-identical to -jobs 1", cand.Sweep.Jobs)
	}
	if base.Sweep != nil && cand.Sweep == nil {
		d.failf("harness sweep missing from candidate (base has one)")
	}
}

func main() {
	wallTol := flag.Float64("walltol", 0.20, "relative tolerance for host wall_ns and events_per_sec")
	allocTol := flag.Float64("alloctol", 0.25, "relative tolerance for host allocs and alloc_bytes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] BASE.json CANDIDATE.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	basePath, candPath := flag.Arg(0), flag.Arg(1)

	var baseHdr, candHdr header
	{
		var probe json.RawMessage
		baseHdr = load(basePath, &probe)
		candHdr = load(candPath, &probe)
	}
	if baseHdr.Schema != candHdr.Schema {
		fatal("schema mismatch: %s is %q, %s is %q", basePath, baseHdr.Schema, candPath, candHdr.Schema)
	}

	d := &diff{}
	switch baseHdr.Schema {
	case baselineSchema:
		var base, cand document
		load(basePath, &base)
		load(candPath, &cand)
		compareBaseline(d, base, cand)
		if d.failures == 0 {
			fmt.Printf("OK: %d virtual-time cells identical\n", len(base.Cells))
		}
	case hostSchema:
		var base, cand hostDoc
		load(basePath, &base)
		load(candPath, &cand)
		compareHost(d, base, cand, *wallTol, *allocTol)
		if d.failures == 0 {
			fmt.Printf("OK: %d host cells within tolerance (wall ±%.0f%%, allocs ±%.0f%%)\n",
				len(cand.Cells), 100**wallTol, 100**allocTol)
			if cand.Sweep != nil {
				fmt.Printf("OK: harness sweep -jobs %d byte-identical, speedup %.2fx\n",
					cand.Sweep.Jobs, cand.Sweep.Speedup)
			}
		}
	default:
		fatal("unknown schema %q (want %s or %s)", baseHdr.Schema, baselineSchema, hostSchema)
	}
	if d.failures > 0 {
		fmt.Printf("benchdiff: %d regression(s)\n", d.failures)
		os.Exit(1)
	}
}
