package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/simd"
	"repro/internal/simdclient"
	"repro/internal/simdcluster"
)

// buildOnce compiles the router and member binaries once per test
// process, into one directory so the sibling autodetection works too.
var buildOnce struct {
	sync.Once
	dir string
	err error
}

func binaries(t *testing.T) (cluster, simdBin string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "simdcluster-test-bin-")
		if err == nil {
			for _, b := range [][2]string{{"simdcluster", "repro/cmd/simdcluster"}, {"simd", "repro/cmd/simd"}} {
				out, cmdErr := exec.Command("go", "build", "-o", filepath.Join(dir, b[0]), b[1]).CombinedOutput()
				if cmdErr != nil {
					err = fmt.Errorf("go build %s: %v\n%s", b[1], cmdErr, out)
					break
				}
			}
		}
		buildOnce.dir, buildOnce.err = dir, err
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return filepath.Join(buildOnce.dir, "simdcluster"), filepath.Join(buildOnce.dir, "simd")
}

// router is one spawned simdcluster process under test.
type router struct {
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
	mu   sync.Mutex
}

func (r *router) dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.logs.String()
}

// startRouter launches simdcluster on an ephemeral port and blocks
// until its "simdcluster listening" line reveals the address.
func startRouter(t *testing.T, args ...string) *router {
	t.Helper()
	bin, simdBin := binaries(t)
	base := []string{"-addr", "127.0.0.1:0", "-simd-bin", simdBin, "-log-format", "json"}
	cmd := exec.Command(bin, append(base, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	r := &router{cmd: cmd, logs: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := newLineScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			r.mu.Lock()
			r.logs.WriteString(line + "\n")
			r.mu.Unlock()
			var rec struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal([]byte(line), &rec) == nil && rec.Msg == "simdcluster listening" {
				select {
				case addrCh <- rec.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		r.base = "http://" + addr
	case <-time.After(120 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("router never logged its address; logs:\n%s", r.dump())
	}
	t.Cleanup(func() {
		if cmd.ProcessState != nil {
			return
		}
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	return r
}

// submitView is the router's submit/status wire slice these tests use.
type submitView struct {
	ID           string `json:"id"`
	Hash         string `json:"hash"`
	State        string `json:"state"`
	Error        string `json:"error"`
	Node         string `json:"node_id"`
	CacheHitNow  bool   `json:"cache_hit_now"`
	Redispatches int    `json:"redispatches"`
}

func submit(t *testing.T, c *simdclient.Client, spec string) submitView {
	t.Helper()
	var v submitView
	code, _, err := c.PostJSON("/jobs", []byte(spec), &v)
	if err != nil || (code != http.StatusOK && code != http.StatusAccepted) {
		t.Fatalf("submit %s: code %d err %v (%+v)", spec, code, err, v)
	}
	return v
}

func waitDone(t *testing.T, c *simdclient.Client, id string) submitView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	var v submitView
	for time.Now().Before(deadline) {
		if err := c.GetJSON("/jobs/"+id, &v); err == nil {
			switch v.State {
			case "done":
				return v
			case "failed", "cancelled":
				t.Fatalf("job %s settled %s (%s), want done", id, v.State, v.Error)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished (last %+v)", id, v)
	return v
}

func fetchReport(t *testing.T, c *simdclient.Client, id string) []byte {
	t.Helper()
	code, data, _, err := c.GetRaw("/jobs/" + id + "/report")
	if err != nil || code != http.StatusOK {
		t.Fatalf("report %s: code %d err %v body %s", id, code, err, data)
	}
	return data
}

// nodesView decodes GET /nodes.
type nodesView struct {
	Nodes []struct {
		ID    string `json:"node_id"`
		State string `json:"state"`
		PID   int    `json:"pid"`
	} `json:"nodes"`
}

func spec(seed uint64, endTime float64) string {
	return fmt.Sprintf(`{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":%g,"seed":%d}`, endTime, seed)
}

// seedFor finds a seed whose content address rendezvous-ranks target
// first — the same placement computation the router runs.
func seedFor(t *testing.T, ids []string, target string, endTime float64, from uint64) uint64 {
	t.Helper()
	for seed := from; seed < from+10000; seed++ {
		h, err := simd.JobSpec{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4, EndTime: endTime, Seed: seed}.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if simdcluster.Rank(ids, h)[0] == target {
			return seed
		}
	}
	t.Fatalf("no seed ranks %s first", target)
	return 0
}

// TestClusterSmoke is the acceptance scenario, end to end with real
// processes: a 3-node cluster loses a member to kill -9 mid-run and
// no submitted job is lost — queued and running work re-dispatches to
// live replicas, completed results stay serveable byte-identically
// from the shared store, and repeat submissions are cache hits with
// zero re-execution. scripts/cluster_smoke.sh runs exactly this test.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real cluster processes")
	}
	dir := t.TempDir()
	r := startRouter(t, "-nodes", "3", "-workers", "1", "-store-dir", dir,
		"-health-interval", "100ms", "-fail-threshold", "2", "-restart=false")
	c := simdclient.New(r.base)
	ids := []string{"n1", "n2", "n3"}

	if h, err := c.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("router healthz: %+v err %v (all members must be up before the listener starts)", h, err)
	}

	// A mix of fast jobs completes across the cluster; keep their
	// reports as the byte-identity reference.
	reports := map[string][]byte{} // cluster job id -> report
	owners := map[string]string{}
	for seed := uint64(1); seed <= 4; seed++ {
		v := submit(t, c, spec(seed, 5))
		fin := waitDone(t, c, v.ID)
		reports[v.ID] = fetchReport(t, c, v.ID)
		owners[v.ID] = fin.Node
	}

	// Pick a victim that owns at least one completed job, pin it with a
	// running blocker, and queue a fast job behind it (workers=1).
	victim := ""
	for _, owner := range owners {
		victim = owner
		break
	}
	blocker := submit(t, c, spec(seedFor(t, ids, victim, 50000, 100), 50000))
	if blocker.Node != victim {
		t.Fatalf("blocker routed to %s, want %s", blocker.Node, victim)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v submitView
		if err := c.GetJSON("/jobs/"+blocker.ID, &v); err == nil && v.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(25 * time.Millisecond)
	}
	queued := submit(t, c, spec(seedFor(t, ids, victim, 6, 900), 6))
	if queued.Node != victim {
		t.Fatalf("queued job routed to %s, want %s", queued.Node, victim)
	}

	// kill -9 the victim's process, mid-run.
	var nv nodesView
	if err := c.GetJSON("/nodes", &nv); err != nil {
		t.Fatal(err)
	}
	pid := 0
	for _, n := range nv.Nodes {
		if n.ID == victim {
			pid = n.PID
		}
	}
	if pid == 0 {
		t.Fatalf("no pid for victim %s in %+v", victim, nv)
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// The health gate demotes the victim.
	deadline = time.Now().Add(30 * time.Second)
	for {
		if err := c.GetJSON("/nodes", &nv); err == nil {
			down := false
			for _, n := range nv.Nodes {
				if n.ID == victim && n.State == "down" {
					down = true
				}
			}
			if down {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s never marked down\nlogs:\n%s", victim, r.dump())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Free the failover-stolen worker: cancel the blocker through the
	// cluster (retrying while the re-dispatch settles).
	deadline = time.Now().Add(30 * time.Second)
	for {
		code, err := c.Delete("/jobs/"+blocker.ID, nil)
		if err == nil && code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never cancellable after failover: code %d err %v", code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Zero jobs lost: the queued job completes on a surviving node.
	fin := waitDone(t, c, queued.ID)
	if fin.Node == victim {
		t.Fatalf("queued job reports completion on the dead node %s", victim)
	}
	if fin.Redispatches == 0 {
		t.Fatal("queued job survived the kill without a recorded re-dispatch")
	}
	fetchReport(t, c, queued.ID)

	// Completed results survive their owner's death byte-identically —
	// the shared store serves them through a live replica.
	for id, want := range reports {
		got := fetchReport(t, c, id)
		if !bytes.Equal(got, want) {
			t.Fatalf("report %s (owner %s) changed after the kill", id, owners[id])
		}
	}

	// Repeat submission of a completed spec: a cache hit on a live
	// node with zero new executions.
	var before, after struct {
		Executions int64 `json:"executions"`
		Failovers  int64 `json:"cluster_failovers"`
		Nodes      []struct {
			ID    string `json:"node_id"`
			State string `json:"state"`
			Stats *struct {
				Executions int64 `json:"executions"`
			} `json:"stats"`
		} `json:"nodes"`
	}
	if err := c.GetJSON("/stats", &before); err != nil {
		t.Fatal(err)
	}
	re := submit(t, c, spec(1, 5))
	if !re.CacheHitNow || re.State != "done" || re.Node == victim {
		t.Fatalf("repeat submission: %+v, want a warm hit on a live node", re)
	}
	if err := c.GetJSON("/stats", &after); err != nil {
		t.Fatal(err)
	}
	if after.Executions != before.Executions {
		t.Fatalf("repeat submission re-executed: %d -> %d", before.Executions, after.Executions)
	}
	if after.Failovers == 0 {
		t.Fatal("stats recorded no failover events")
	}

	// Cluster totals equal the per-node sum from the same response.
	var sum int64
	for _, n := range after.Nodes {
		if n.Stats != nil {
			sum += n.Stats.Executions
		}
	}
	if after.Executions != sum {
		t.Fatalf("stats totals %d != node sum %d", after.Executions, sum)
	}
}
