package main

import (
	"bufio"
	"encoding/json"
	"io"
)

// newLineScanner wraps member stderr with a generous line budget —
// structured log lines with embedded errors can run long.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return sc
}

// parseListening extracts the listen address from a member's
// structured "simd listening" log line.
func parseListening(line string) (string, bool) {
	var rec struct {
		Msg  string `json:"msg"`
		Addr string `json:"addr"`
	}
	if json.Unmarshal([]byte(line), &rec) == nil && rec.Msg == "simd listening" && rec.Addr != "" {
		return rec.Addr, true
	}
	return "", false
}
