// Command simdcluster runs N simd daemons as one service: it spawns
// and supervises the member processes, health-gates their membership
// (a node joins the routing ring only after /healthz passes), and
// serves the cluster router — jobs shard across members by their spec
// content address, repeat submissions route to the member whose
// caches already hold the result, and when a member dies or drains
// its unfinished jobs re-dispatch to live replicas. Members share one
// store directory (each with its own journal), so failover re-runs
// resolve as store hits with byte-identical reports.
//
// The router's API is shaped like a single simd daemon (POST /jobs,
// GET /jobs/{id}, /report, /stats, /metrics, /healthz) plus cluster
// verbs: GET /nodes for membership and POST/DELETE
// /nodes/{id}/drain. Point simtop at it unchanged.
//
// Examples:
//
//	simdcluster                              # 3 members on :8090
//	simdcluster -nodes 5 -addr :9000 -store-dir /var/lib/simd
//	simdcluster -workers 4 -queue 128        # per-member pool sizing
//	simdcluster -replicas 2                  # cap dispatch attempts per job
//
// A crashed member is respawned (same node identity, same journal, new
// port) and re-passes the health gate before receiving work again.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/simdcluster"
)

type config struct {
	nodes          int
	addr           string
	storeDir       string
	replicas       int
	simdBin        string
	workers, queue int
	healthInterval time.Duration
	failThreshold  int
	restart        bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.nodes, "nodes", 3, "simd member processes to spawn and supervise")
	flag.StringVar(&cfg.addr, "addr", ":8090", "router HTTP listen address")
	flag.StringVar(&cfg.storeDir, "store-dir", "", "shared content-addressed store directory (default: a fresh temp dir, logged at startup)")
	flag.IntVar(&cfg.replicas, "replicas", 0, "candidate members tried per dispatch before giving up (0: all eligible)")
	flag.StringVar(&cfg.simdBin, "simd-bin", "", "simd binary to spawn (default: sibling of this executable, then $PATH)")
	flag.IntVar(&cfg.workers, "workers", 2, "workers per member")
	flag.IntVar(&cfg.queue, "queue", 64, "queue depth per member")
	flag.DurationVar(&cfg.healthInterval, "health-interval", 500*time.Millisecond, "member health probe cadence")
	flag.IntVar(&cfg.failThreshold, "fail-threshold", 3, "consecutive probe failures demoting a member to down")
	flag.BoolVar(&cfg.restart, "restart", true, "respawn crashed members")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "json", "log output format: json|text")
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err == nil {
		var logger *slog.Logger
		logger, err = obs.NewLogger(os.Stderr, *logFormat, level)
		if err == nil {
			err = run(cfg, logger)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdcluster:", err)
		os.Exit(1)
	}
}

// findSimd resolves the member binary: an explicit flag, the sibling
// of this executable, then $PATH.
func findSimd(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "simd")
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib, nil
		}
	}
	if p, err := exec.LookPath("simd"); err == nil {
		return p, nil
	}
	return "", errors.New("no simd binary found; build cmd/simd or pass -simd-bin")
}

// memberProc is one supervised simd process.
type memberProc struct {
	id   string
	cmd  *exec.Cmd
	addr string
}

// supervisor spawns member daemons, registers them with the cluster,
// and respawns the ones that die (unless it is shutting down).
type supervisor struct {
	cfg     config
	bin     string
	log     *slog.Logger
	cluster *simdcluster.Cluster

	mu       sync.Mutex
	procs    map[string]*memberProc
	stopping atomic.Bool
	wg       sync.WaitGroup
}

// spawn starts one member on an ephemeral port, waits for its
// "simd listening" line, and registers it with the cluster (as
// starting — traffic waits for the health gate).
func (s *supervisor) spawn(id string) error {
	journal := filepath.Join(s.cfg.storeDir, "journal-"+id+".ndjson")
	cmd := exec.Command(s.bin,
		"-addr", "127.0.0.1:0",
		"-node-id", id,
		"-store-dir", s.cfg.storeDir,
		"-journal", journal,
		"-workers", fmt.Sprint(s.cfg.workers),
		"-queue", fmt.Sprint(s.cfg.queue),
		"-log-format", "json",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	addrCh := make(chan string, 1)
	go func() {
		// Forward member logs verbatim (they are already structured and
		// carry node_id), watching for the listening line.
		sc := newLineScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line)
			if addr, ok := parseListening(line); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p := &memberProc{id: id, cmd: cmd, addr: addr}
		s.mu.Lock()
		s.procs[id] = p
		s.mu.Unlock()
		s.cluster.AddMember(id, "http://"+addr, cmd.Process.Pid)
		s.wg.Add(1)
		go s.watch(p)
		return nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("member %s never logged its address", id)
	}
}

// watch reaps the member process and respawns it after a crash. The
// health loop handles the failover; the respawned process re-passes
// the gate (replaying its journal against the shared store) before it
// takes traffic again.
func (s *supervisor) watch(p *memberProc) {
	defer s.wg.Done()
	err := p.cmd.Wait()
	if s.stopping.Load() {
		return
	}
	s.log.Warn("cluster member process exited", "node_id", p.id, "error", fmt.Sprint(err))
	if !s.cfg.restart {
		return
	}
	time.Sleep(2 * time.Second)
	if s.stopping.Load() {
		return
	}
	if err := s.spawn(p.id); err != nil {
		s.log.Error("cluster member respawn failed", "node_id", p.id, "error", err.Error())
	}
}

// stop terminates every member: SIGTERM for a graceful drain, SIGKILL
// for stragglers still running long simulations after the grace
// period.
func (s *supervisor) stop(grace time.Duration) {
	s.stopping.Store(true)
	s.mu.Lock()
	procs := make([]*memberProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	for _, p := range procs {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	deadline := time.After(grace)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		for _, p := range procs {
			p.cmd.Process.Signal(syscall.SIGKILL)
		}
		<-done
	}
}

func run(cfg config, logger *slog.Logger) error {
	if cfg.nodes < 1 {
		return errors.New("-nodes must be at least 1")
	}
	bin, err := findSimd(cfg.simdBin)
	if err != nil {
		return err
	}
	if cfg.storeDir == "" {
		dir, err := os.MkdirTemp("", "simdcluster-store-")
		if err != nil {
			return err
		}
		cfg.storeDir = dir
	}
	if err := os.MkdirAll(cfg.storeDir, 0o755); err != nil {
		return err
	}

	cluster := simdcluster.New(simdcluster.Options{
		HealthInterval: cfg.healthInterval,
		FailThreshold:  cfg.failThreshold,
		Replicas:       cfg.replicas,
		Logger:         logger,
	})
	defer cluster.Close()
	sup := &supervisor{cfg: cfg, bin: bin, log: logger, cluster: cluster, procs: make(map[string]*memberProc)}

	for i := 1; i <= cfg.nodes; i++ {
		if err := sup.spawn(fmt.Sprintf("n%d", i)); err != nil {
			sup.stop(5 * time.Second)
			return err
		}
	}
	// A member is "started" only once it answers health checks; gate the
	// router on the whole fleet passing.
	for i := 1; i <= cfg.nodes; i++ {
		if err := cluster.WaitUp(fmt.Sprintf("n%d", i), 30*time.Second); err != nil {
			sup.stop(5 * time.Second)
			return err
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		sup.stop(5 * time.Second)
		return err
	}
	httpSrv := &http.Server{
		Handler:           cluster.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	logger.Info("simdcluster listening", "addr", ln.Addr().String(),
		"nodes", cfg.nodes, "store_dir", cfg.storeDir, "simd_bin", bin)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errCh:
		sup.stop(5 * time.Second)
		return err
	case <-ctx.Done():
		stopSignals()
	}

	logger.Info("simdcluster shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	sup.stop(10 * time.Second)
	cluster.Close()
	logger.Info("simdcluster stopped")
	if err := <-errCh; err != nil {
		return err
	}
	return shutdownErr
}
