package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildOnce compiles the daemon binary once per test process.
var buildOnce struct {
	sync.Once
	bin string
	err error
}

func simdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "simd-test-bin-")
		if err == nil {
			buildOnce.bin = filepath.Join(dir, "simd-under-test")
			out, cmdErr := exec.Command("go", "build", "-o", buildOnce.bin, ".").CombinedOutput()
			if cmdErr != nil {
				err = fmt.Errorf("go build: %v\n%s", cmdErr, out)
			}
		}
		buildOnce.err = err
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

// daemon is one spawned simd process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	logs *bytes.Buffer
	mu   *sync.Mutex
}

// startDaemon launches simd on an ephemeral port and blocks until its
// "simd listening" log line reveals the real address.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(simdBinary(t), append([]string{"-addr", "127.0.0.1:0", "-log-format", "json"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, logs: &bytes.Buffer{}, mu: &sync.Mutex{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.logs.WriteString(line + "\n")
			d.mu.Unlock()
			var rec struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal([]byte(line), &rec) == nil && rec.Msg == "simd listening" {
				select {
				case addrCh <- rec.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never logged its address; logs:\n%s", d.dump())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

func (d *daemon) dump() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logs.String()
}

// kill9 delivers SIGKILL — the crash the store's rename protocol and the
// journal must survive — and reaps the process.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// submitResp is the slice of the wire response these tests assert on.
type submitResp struct {
	ID          string `json:"id"`
	Hash        string `json:"hash"`
	State       string `json:"state"`
	StoreHit    bool   `json:"store_hit"`
	CacheHitNow bool   `json:"cache_hit_now"`
}

func submit(t *testing.T, base, spec string) submitResp {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s: %d %s", spec, resp.StatusCode, body)
	}
	var sr submitResp
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitJob polls one job until it reaches want (or fails the test on any
// other terminal state).
func waitJob(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Rounds int    `json:"rounds"`
		}
		getJSON(t, base+"/jobs/"+id, &st)
		if st.State == want {
			return
		}
		switch st.State {
		case "done", "failed", "cancelled":
			t.Fatalf("job %s settled %s (%s), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func report(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: %d %s", id, resp.StatusCode, data)
	}
	return data
}

// TestCrashRestartDurability is the acceptance scenario: a daemon is
// SIGKILLed mid-run; its successor on the same store directory serves
// completed results byte-identically with zero re-execution and
// re-enqueues the interrupted job from the journal.
func TestCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	dir := t.TempDir()
	const fast = `{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5,"seed":101}`
	const slow = `{"nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":50000,"seed":102}`

	d1 := startDaemon(t, "-store-dir", dir, "-workers", "2")
	done := submit(t, d1.base, fast)
	waitJob(t, d1.base, done.ID, "done")
	want := report(t, d1.base, done.ID)

	interrupted := submit(t, d1.base, slow)
	waitJob(t, d1.base, interrupted.ID, "running")
	d1.kill9(t)

	// Warm restart on the same directory.
	d2 := startDaemon(t, "-store-dir", dir, "-workers", "2")
	var stats struct {
		Recovered  int64 `json:"recovered"`
		Executions int64 `json:"executions"`
	}
	getJSON(t, d2.base+"/stats", &stats)
	if stats.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1 (the interrupted job)\nlogs:\n%s", stats.Recovered, d2.dump())
	}

	// The completed job's result survived the kill: a resubmission is a
	// store hit, byte-identical, with no engine run.
	re := submit(t, d2.base, fast)
	if !re.StoreHit || !re.CacheHitNow || re.State != "done" {
		t.Fatalf("resubmission after crash: %+v, want a store hit", re)
	}
	if got := report(t, d2.base, re.ID); !bytes.Equal(got, want) {
		t.Fatal("post-restart report is not byte-identical")
	}
	getJSON(t, d2.base+"/stats", &stats)
	if stats.Executions > 1 {
		t.Fatalf("executions = %d, want at most 1 (only the interrupted job re-runs)", stats.Executions)
	}

	// The interrupted job really is back in flight (journal replay), and
	// a healthy store reports ok.
	var hz struct {
		Status string `json:"status"`
	}
	getJSON(t, d2.base+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz = %q after a clean warm restart", hz.Status)
	}
	var jobs struct {
		Jobs []struct {
			Hash  string `json:"hash"`
			State string `json:"state"`
		} `json:"jobs"`
	}
	getJSON(t, d2.base+"/jobs", &jobs)
	found := false
	for _, j := range jobs.Jobs {
		if j.Hash == interrupted.Hash {
			found = true
			if j.State == "failed" || j.State == "cancelled" {
				t.Fatalf("recovered job state %s", j.State)
			}
		}
	}
	if !found {
		t.Fatalf("interrupted job (hash %s) not re-enqueued; jobs: %+v", interrupted.Hash, jobs.Jobs)
	}
}

// TestRestartJournalDrains: once the recovered job settles (here by
// cancellation — its fsynced end record is what matters), a third
// daemon generation finds nothing pending — recovery converges instead
// of replaying forever.
func TestRestartJournalDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	dir := t.TempDir()
	const spec = `{"nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":50000,"seed":103}`

	d1 := startDaemon(t, "-store-dir", dir, "-workers", "1")
	j := submit(t, d1.base, spec)
	waitJob(t, d1.base, j.ID, "running")
	d1.kill9(t)

	d2 := startDaemon(t, "-store-dir", dir, "-workers", "1")
	var stats struct {
		Recovered int64 `json:"recovered"`
	}
	getJSON(t, d2.base+"/stats", &stats)
	if stats.Recovered != 1 {
		t.Fatalf("second generation recovered = %d, want 1", stats.Recovered)
	}
	var jobs struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	getJSON(t, d2.base+"/jobs", &jobs)
	if len(jobs.Jobs) != 1 {
		t.Fatalf("jobs after recovery: %+v", jobs.Jobs)
	}
	// Settle the recovered job: cancel it and wait for the terminal
	// state, which journals an end record.
	req, _ := http.NewRequest(http.MethodDelete, d2.base+"/jobs/"+jobs.Jobs[0].ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitJob(t, d2.base, jobs.Jobs[0].ID, "cancelled")
	// The end record is fsynced before the terminal state is visible?
	// No — the journal write races the status flip, so give it a beat.
	time.Sleep(200 * time.Millisecond)
	d2.kill9(t)

	d3 := startDaemon(t, "-store-dir", dir, "-workers", "1")
	getJSON(t, d3.base+"/stats", &stats)
	if stats.Recovered != 0 {
		t.Fatalf("third generation recovered = %d, want 0\nlogs:\n%s", stats.Recovered, d3.dump())
	}
}
