// Command simd serves the simulation engine over HTTP: clients POST a
// JobSpec to /jobs, stream per-GVT-round progress from
// /jobs/{id}/events, and fetch the canonical run report from
// /jobs/{id}/report. Because the engine is deterministic, results are
// content-addressed by spec hash: re-submitting an identical spec is a
// cache hit and identical in-flight submissions execute once.
//
// Durability: -store-dir adds a disk-backed content-addressed result
// store under the in-memory cache plus a warm-restart journal, so
// results survive restarts (even kill -9) and interrupted jobs
// re-enqueue on startup. Multiple daemons may share one store
// directory. When the disk misbehaves the service degrades to
// memory-only — /healthz reports "degraded" — and recovers by probing.
// -job-deadline bounds each job's wall-clock run time.
//
// Observability: GET /metrics serves Prometheus text exposition (live
// service and engine signals, updated every GVT round), GET
// /jobs/{id}/flight returns a job's flight recorder (the bounded tail
// of its recent rounds, for post-mortems), logs are structured
// (-log-level, -log-format), and -debug-addr starts a separate
// listener with net/http/pprof and a second /metrics mount. `simtop`
// renders the daemon live in a terminal.
//
// Examples:
//
//	simd                                   # listen on :8080
//	simd -addr 127.0.0.1:9090 -workers 4   # four concurrent simulations
//	simd -cachesize 256 -queue 128         # 256 MiB cache, 128 queued jobs
//	simd -store-dir /var/lib/simd          # crash-safe persistent results
//	simd -job-deadline 5m                  # bound each job's wall clock
//	simd -log-level debug -log-format text # chatty human-readable logs
//	simd -debug-addr 127.0.0.1:6060        # pprof + metrics debug listener
//
// See README.md ("Running as a service", "Observability" and
// "Durability & degradation") for the curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/store"
)

// config carries the parsed flags into run.
type config struct {
	addr, debugAddr string
	workers, queue  int
	cacheMiB        int64
	flightRounds    int
	flightRetain    int
	storeDir        string
	storeMiB        int64
	journalPath     string
	jobDeadline     time.Duration
	nodeID          string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "simulations executing concurrently")
	flag.IntVar(&cfg.queue, "queue", 64, "bounded queue depth beyond the running jobs; past it submissions get 429")
	flag.Int64Var(&cfg.cacheMiB, "cachesize", 64, "result cache budget in MiB (0: disable caching)")
	flag.StringVar(&cfg.storeDir, "store-dir", "", "persistent content-addressed result store directory (empty: memory-only)")
	flag.Int64Var(&cfg.storeMiB, "store-bytes", 1024, "persistent store budget in MiB (0: unbounded); oldest entries evict past it")
	flag.StringVar(&cfg.journalPath, "journal", "", "warm-restart journal path (default <store-dir>/journal.ndjson; daemons sharing a store dir need distinct journals)")
	flag.DurationVar(&cfg.jobDeadline, "job-deadline", 0, "per-job wall-clock deadline; a job over it fails (0: none)")
	flag.StringVar(&cfg.nodeID, "node-id", "", "stable node identity echoed by /healthz and /stats (default: the listener's host:port)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "json", "log output format: json|text")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "optional debug listen address serving /debug/pprof/ and /metrics (empty: disabled)")
	flag.IntVar(&cfg.flightRounds, "flight-rounds", 64, "per-job flight recorder size in GVT rounds")
	flag.IntVar(&cfg.flightRetain, "flight-retain", 128, "finished jobs retaining flight/event history before the oldest is released")
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err == nil {
		var logger *slog.Logger
		logger, err = obs.NewLogger(os.Stderr, *logFormat, level)
		if err == nil {
			err = run(cfg, logger)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// newAPIServer applies the service's HTTP hardening to a handler: header
// and read bounds so a stalled or hostile client cannot hold a
// connection open indefinitely. WriteTimeout stays 0 on purpose — the
// /jobs/{id}/events NDJSON stream legitimately writes for as long as a
// simulation runs — so slow-writer exposure is bounded by IdleTimeout
// between requests instead.
func newAPIServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

func run(cfg config, logger *slog.Logger) error {
	cacheBytes := cfg.cacheMiB << 20
	if cfg.cacheMiB <= 0 {
		cacheBytes = -1
	}
	opts := simd.Options{
		Workers:      cfg.workers,
		QueueDepth:   cfg.queue,
		CacheBytes:   cacheBytes,
		FlightRounds: cfg.flightRounds,
		FlightRetain: cfg.flightRetain,
		JobDeadline:  cfg.jobDeadline,
		Logger:       logger,
	}

	// Persistent store + warm-restart journal. Open errors are fatal —
	// a store that cannot even start is an operator mistake; only disks
	// that sour later degrade at runtime.
	if cfg.storeDir != "" {
		st, err := store.Open(store.Options{
			Dir:      cfg.storeDir,
			MaxBytes: cfg.storeMiB << 20,
			Logger:   logger,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		jpath := cfg.journalPath
		if jpath == "" {
			jpath = filepath.Join(cfg.storeDir, "journal.ndjson")
		}
		jl, err := store.OpenJournal(jpath, nil, logger)
		if err != nil {
			return err
		}
		defer jl.Close()
		opts.Store, opts.Journal = st, jl
	}

	// Listen explicitly so the real port (e.g. with -addr :0) is known —
	// and logged — before traffic or recovery starts, and so the default
	// node identity (host:port) exists before the server is built.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	opts.NodeID = cfg.nodeID
	if opts.NodeID == "" {
		opts.NodeID = ln.Addr().String()
	}

	svc := simd.NewServer(opts)
	httpSrv := newAPIServer(svc.Handler())
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	build := obs.ReadBuild()
	logger.Info("simd listening", "addr", ln.Addr().String(), "node_id", opts.NodeID,
		"workers", cfg.workers, "queue", cfg.queue, "cache_mib", cfg.cacheMiB,
		"store_dir", cfg.storeDir, "go_version", build.GoVersion, "revision", build.ShortRevision())

	// Warm restart: re-enqueue journaled jobs interrupted by the previous
	// run. Completed ones come back as instant store hits; interrupted
	// ones re-execute. Recovery runs after the listener is up so the
	// daemon answers health checks while it backfills.
	if n := svc.Recover(); n > 0 {
		logger.Info("warm restart recovered jobs", "jobs", n)
	}

	// Optional debug listener: pprof profiles plus a second /metrics
	// mount, kept off the public address so profiling stays opt-in and
	// firewallable separately from the API.
	var dbgSrv *http.Server
	if cfg.debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", svc.MetricsHandler())
		dbgSrv = newAPIServer(dmux)
		dbgSrv.Addr = cfg.debugAddr
		go func() {
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", cfg.debugAddr, "error", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", cfg.debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		svc.Close()
		return err // listener died before any signal
	case <-ctx.Done():
		stop() // a second signal kills the process instead of waiting out the drain
	}

	// Graceful drain: stop accepting connections, let in-flight HTTP
	// requests finish, then let every admitted job settle.
	logger.Info("simd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if dbgSrv != nil {
		dbgSrv.Shutdown(shutdownCtx)
	}
	svc.Close()
	logger.Info("simd drained")
	if err := <-errCh; err != nil {
		return err
	}
	return shutdownErr
}
