// Command simd serves the simulation engine over HTTP: clients POST a
// JobSpec to /jobs, stream per-GVT-round progress from
// /jobs/{id}/events, and fetch the canonical run report from
// /jobs/{id}/report. Because the engine is deterministic, results are
// content-addressed by spec hash: re-submitting an identical spec is a
// cache hit and identical in-flight submissions execute once.
//
// Examples:
//
//	simd                                   # listen on :8080
//	simd -addr 127.0.0.1:9090 -workers 4   # four concurrent simulations
//	simd -cachesize 256 -queue 128         # 256 MiB cache, 128 queued jobs
//
// See README.md ("Running as a service") for the curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/simd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "simulations executing concurrently")
		queue     = flag.Int("queue", 64, "bounded queue depth beyond the running jobs; past it submissions get 429")
		cacheSize = flag.Int64("cachesize", 64, "result cache budget in MiB (0: disable caching)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cacheSize); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, cacheMiB int64) error {
	cacheBytes := cacheMiB << 20
	if cacheMiB <= 0 {
		cacheBytes = -1
	}
	svc := simd.NewServer(simd.Options{
		Workers:    workers,
		QueueDepth: queue,
		CacheBytes: cacheBytes,
	})

	httpSrv := &http.Server{Addr: addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Printf("simd: listening on %s (%d workers, queue %d, cache %d MiB)\n",
		addr, workers, queue, cacheMiB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		svc.Close()
		return err // listener died before any signal
	case <-ctx.Done():
		stop() // a second signal kills the process instead of waiting out the drain
	}

	// Graceful drain: stop accepting connections, let in-flight HTTP
	// requests finish, then let every admitted job settle.
	fmt.Println("simd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	svc.Close()
	if err := <-errCh; err != nil {
		return err
	}
	return shutdownErr
}
