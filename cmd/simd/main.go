// Command simd serves the simulation engine over HTTP: clients POST a
// JobSpec to /jobs, stream per-GVT-round progress from
// /jobs/{id}/events, and fetch the canonical run report from
// /jobs/{id}/report. Because the engine is deterministic, results are
// content-addressed by spec hash: re-submitting an identical spec is a
// cache hit and identical in-flight submissions execute once.
//
// Observability: GET /metrics serves Prometheus text exposition (live
// service and engine signals, updated every GVT round), GET
// /jobs/{id}/flight returns a job's flight recorder (the bounded tail
// of its recent rounds, for post-mortems), logs are structured
// (-log-level, -log-format), and -debug-addr starts a separate
// listener with net/http/pprof and a second /metrics mount. `simtop`
// renders the daemon live in a terminal.
//
// Examples:
//
//	simd                                   # listen on :8080
//	simd -addr 127.0.0.1:9090 -workers 4   # four concurrent simulations
//	simd -cachesize 256 -queue 128         # 256 MiB cache, 128 queued jobs
//	simd -log-level debug -log-format text # chatty human-readable logs
//	simd -debug-addr 127.0.0.1:6060        # pprof + metrics debug listener
//
// See README.md ("Running as a service" and "Observability") for the
// curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/simd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "simulations executing concurrently")
		queue     = flag.Int("queue", 64, "bounded queue depth beyond the running jobs; past it submissions get 429")
		cacheSize = flag.Int64("cachesize", 64, "result cache budget in MiB (0: disable caching)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "json", "log output format: json|text")
		debugAddr = flag.String("debug-addr", "", "optional debug listen address serving /debug/pprof/ and /metrics (empty: disabled)")
		flightN   = flag.Int("flight-rounds", 64, "per-job flight recorder size in GVT rounds")
		flightJ   = flag.Int("flight-retain", 128, "finished jobs retaining flight/event history before the oldest is released")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err == nil {
		var logger *slog.Logger
		logger, err = obs.NewLogger(os.Stderr, *logFormat, level)
		if err == nil {
			err = run(*addr, *debugAddr, *workers, *queue, *cacheSize, *flightN, *flightJ, logger)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr string, workers, queue int, cacheMiB int64, flightRounds, flightRetain int, logger *slog.Logger) error {
	cacheBytes := cacheMiB << 20
	if cacheMiB <= 0 {
		cacheBytes = -1
	}
	svc := simd.NewServer(simd.Options{
		Workers:      workers,
		QueueDepth:   queue,
		CacheBytes:   cacheBytes,
		FlightRounds: flightRounds,
		FlightRetain: flightRetain,
		Logger:       logger,
	})

	httpSrv := &http.Server{Addr: addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	build := obs.ReadBuild()
	logger.Info("simd listening", "addr", addr, "workers", workers, "queue", queue,
		"cache_mib", cacheMiB, "go_version", build.GoVersion, "revision", build.ShortRevision())

	// Optional debug listener: pprof profiles plus a second /metrics
	// mount, kept off the public address so profiling stays opt-in and
	// firewallable separately from the API.
	var dbgSrv *http.Server
	if debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", svc.MetricsHandler())
		dbgSrv = &http.Server{Addr: debugAddr, Handler: dmux}
		go func() {
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", debugAddr, "error", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		svc.Close()
		return err // listener died before any signal
	case <-ctx.Done():
		stop() // a second signal kills the process instead of waiting out the drain
	}

	// Graceful drain: stop accepting connections, let in-flight HTTP
	// requests finish, then let every admitted job settle.
	logger.Info("simd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if dbgSrv != nil {
		dbgSrv.Shutdown(shutdownCtx)
	}
	svc.Close()
	logger.Info("simd drained")
	if err := <-errCh; err != nil {
		return err
	}
	return shutdownErr
}
