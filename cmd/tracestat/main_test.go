package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conservative"
	"repro/internal/phold"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// genTrace runs a small conservative PHOLD configuration with a trace
// writer attached and returns the binary trace. The engine runs on a
// deterministic simulated clock, so the bytes are stable across hosts —
// which is what lets the analysis output be pinned by golden files.
func genTrace(t *testing.T, sync conservative.SyncKind) []byte {
	t.Helper()
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 2}
	params := phold.Params{Topology: top}
	params.Base = phold.ComputationDominated()
	params.Base.RemotePct = 0.3 // enough cross-node traffic for node inference
	var buf bytes.Buffer
	cfg := conservative.Config{
		Topology:  top,
		Sync:      sync,
		Lookahead: 0.1,
		EndTime:   10,
		Seed:      3,
		Model:     phold.New(params),
		Trace:     trace.NewWriter(&buf),
	}
	eng := conservative.New(cfg)
	if _, err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestAnalysisGolden pins the whole -json document — utilization and
// horizon-roughness analysis included — for both conservative
// protocols. Regenerate with `go test ./cmd/tracestat -update` after an
// intentional schema or engine change.
func TestAnalysisGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		sync conservative.SyncKind
	}{
		{"conservative_nullmsg", conservative.SyncNullMsg},
		{"conservative_window", conservative.SyncWindow},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := genTrace(t, tc.sync)
			a, err := analyze(bytes.NewReader(raw), 20)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			got, err := json.MarshalIndent(a, "", " ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("analysis differs from %s (run with -update after intentional changes)\ngot:\n%s", golden, got)
			}
		})
	}
}

// TestUtilizationAnalysis checks the semantic shape of the new analysis
// independent of the golden bytes.
func TestUtilizationAnalysis(t *testing.T) {
	raw := genTrace(t, conservative.SyncWindow)
	a, err := analyze(bytes.NewReader(raw), 20)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ut := a.Utilization
	if ut == nil {
		t.Fatal("no utilization analysis on a 2-node trace")
	}
	if len(ut.Nodes) != 2 {
		t.Fatalf("utilization covers %d nodes, want 2", len(ut.Nodes))
	}
	if ut.Rounds <= 0 {
		t.Fatalf("utilization saw %d rounds", ut.Rounds)
	}
	for _, n := range ut.Nodes {
		if n.Utilization < 0 || n.Utilization > 1 {
			t.Errorf("node %d utilization %v out of [0,1]", n.Node, n.Utilization)
		}
	}
	if ut.MeanUtilization <= 0 || ut.MeanUtilization > 1 {
		t.Errorf("mean utilization %v out of (0,1]", ut.MeanUtilization)
	}
	if ut.MinUtilization > ut.MeanUtilization {
		t.Errorf("min %v > mean %v", ut.MinUtilization, ut.MeanUtilization)
	}
	if ut.MeanHorizonWidth < 0 || ut.MeanHorizonStddev < 0 {
		t.Errorf("negative roughness: width %v stddev %v", ut.MeanHorizonWidth, ut.MeanHorizonStddev)
	}
	if ut.MeanHorizonStddev > ut.MeanHorizonWidth {
		t.Errorf("stddev %v exceeds width %v", ut.MeanHorizonStddev, ut.MeanHorizonWidth)
	}
	// The moving window bounds how far the horizon can fray: one window
	// (lookahead) plus the batch overshoot. A much larger width means
	// the analysis attributed commits to the wrong nodes.
	if ut.MeanHorizonWidth > 1 {
		t.Errorf("window horizon width %v implausibly large for lookahead 0.1", ut.MeanHorizonWidth)
	}
	// A single-node trace has no between-node desynchronization.
	single := genSingleNodeTrace(t)
	a, err = analyze(bytes.NewReader(single), 20)
	if err != nil {
		t.Fatalf("analyze single: %v", err)
	}
	if a.Utilization != nil {
		t.Error("utilization analysis present on a single-node trace")
	}
}

func genSingleNodeTrace(t *testing.T) []byte {
	t.Helper()
	top := cluster.Topology{Nodes: 1, WorkersPerNode: 2, LPsPerWorker: 2}
	params := phold.Params{Topology: top}
	params.Base = phold.ComputationDominated()
	params.Base.RemotePct = 0
	var buf bytes.Buffer
	cfg := conservative.Config{
		Topology:  top,
		Sync:      conservative.SyncWindow,
		Lookahead: 0.1,
		EndTime:   10,
		Seed:      3,
		Model:     phold.New(params),
		Trace:     trace.NewWriter(&buf),
	}
	eng := conservative.New(cfg)
	if _, err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}
