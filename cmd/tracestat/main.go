// Command tracestat analyzes a binary run trace produced with
// `phold -traceout` (or any engine run with a trace writer): GVT
// progress, commit-rate timeline, per-LP activity spread, and CA-GVT
// mode switching.
//
//	go run ./cmd/phold -gvt ca -scenario mixed -traceout run.trace
//	go run ./cmd/tracestat run.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	buckets := flag.Int("buckets", 20, "timeline resolution (virtual-time buckets)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-buckets n] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	var (
		commits []trace.Commit
		rounds  []trace.Round
	)
	r := trace.NewReader(f)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
		switch v := rec.(type) {
		case trace.Commit:
			commits = append(commits, v)
		case trace.Round:
			rounds = append(rounds, v)
		}
	}
	if len(commits) == 0 {
		fmt.Println("no committed events in trace")
		return
	}

	maxT := 0.0
	perLP := map[uint32]int64{}
	for _, c := range commits {
		if c.T > maxT {
			maxT = c.T
		}
		perLP[c.LP]++
	}

	fmt.Printf("trace: %d committed events over %d LPs, %d GVT rounds, virtual time span [0, %.4g]\n",
		len(commits), len(perLP), len(rounds), maxT)

	// Commit timeline by virtual time.
	fmt.Println("\ncommit timeline (virtual time buckets):")
	hist := make([]int, *buckets)
	for _, c := range commits {
		i := int(c.T / maxT * float64(*buckets))
		if i >= *buckets {
			i = *buckets - 1
		}
		hist[i]++
	}
	peak := 0
	for _, h := range hist {
		if h > peak {
			peak = h
		}
	}
	for i, h := range hist {
		bar := ""
		if peak > 0 {
			bar = repeat('#', h*50/peak)
		}
		fmt.Printf("  [%6.4g, %6.4g) %7d %s\n",
			float64(i)*maxT/float64(*buckets), float64(i+1)*maxT/float64(*buckets), h, bar)
	}

	// Per-LP spread.
	counts := make([]int64, 0, len(perLP))
	var total int64
	for _, c := range perLP {
		counts = append(counts, c)
		total += c
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	fmt.Printf("\nper-LP committed events: min=%d p50=%d p90=%d max=%d mean=%.1f\n",
		counts[0], counts[len(counts)/2], counts[len(counts)*9/10],
		counts[len(counts)-1], float64(total)/float64(len(counts)))

	if len(rounds) > 0 {
		sync := 0
		for _, rd := range rounds {
			if rd.Sync {
				sync++
			}
		}
		last := rounds[len(rounds)-1]
		fmt.Printf("\nGVT rounds: %d (%d synchronous), final GVT %.6g at %.3fms virtual\n",
			len(rounds), sync, last.GVT, float64(last.AtNanos)/1e6)
		fmt.Println("\nGVT progress (every ~10th round):")
		stride := len(rounds)/10 + 1
		for i := 0; i < len(rounds); i += stride {
			rd := rounds[i]
			mode := "async"
			if rd.Sync {
				mode = "SYNC"
			}
			fmt.Printf("  round %4d: gvt=%-10.4g eff=%5.1f%% %s\n",
				rd.Round, rd.GVT, 100*rd.Efficiency, mode)
		}
	}
}

func repeat(c byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
