// Command tracestat analyzes a binary run trace produced with
// `phold -traceout` (or any engine run with a trace writer): GVT
// progress, commit-rate timeline, per-LP activity spread, efficiency
// timeline with CA-GVT switch points, rollback-cascade depth
// distribution, per-node MPI bandwidth timeline, worker phase
// breakdown, and — on multi-node traces — per-node load imbalance
// (committed-event share, commit-frontier lag) with LP migrations.
//
//	go run ./cmd/phold -gvt ca -scenario mixed -traceout run.trace
//	go run ./cmd/tracestat run.trace
//	go run ./cmd/tracestat -json run.trace > analysis.json
//
// Malformed traces exit with status 1 and the byte offset of the
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/trace"
)

// Schema identifies the -json document layout.
const Schema = "cagvt.tracestat/3"

// timeBucket is one virtual-time slice of a timeline.
type timeBucket struct {
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Count int64   `json:"count"`
}

// roundPoint is one GVT round on the efficiency timeline.
type roundPoint struct {
	Round      int64   `json:"round"`
	GVT        float64 `json:"gvt"`
	AtNanos    int64   `json:"at_ns"`
	Sync       bool    `json:"sync"`
	Efficiency float64 `json:"efficiency"`
}

// switchPoint is a CA-GVT mode transition: the round where the Sync
// flag flipped relative to the previous round.
type switchPoint struct {
	Round   int64  `json:"round"`
	AtNanos int64  `json:"at_ns"`
	To      string `json:"to"` // "sync" or "async"
}

// depthBucket is one rollback-depth histogram bucket (depth <= Le).
type depthBucket struct {
	Le        int64 `json:"le"`
	Straggler int64 `json:"straggler"`
	Anti      int64 `json:"anti"`
}

// rollbackAnalysis aggregates rollback episodes.
type rollbackAnalysis struct {
	Episodes   int64         `json:"episodes"`
	Undone     int64         `json:"undone"`
	Stragglers int64         `json:"stragglers"`
	Anti       int64         `json:"anti"`
	MaxDepth   int64         `json:"max_depth"`
	MeanDepth  float64       `json:"mean_depth"`
	Depths     []depthBucket `json:"depth_histogram"`
}

// nodeBandwidth is one node's outbound MPI traffic over simulated time.
type nodeBandwidth struct {
	Node     int          `json:"node"`
	Messages int64        `json:"messages"`
	Bytes    int64        `json:"bytes"`
	Timeline []byteBucket `json:"timeline"`
}

// byteBucket is one simulated-time slice of MPI traffic.
type byteBucket struct {
	T0Nanos int64 `json:"t0_ns"`
	T1Nanos int64 `json:"t1_ns"`
	Bytes   int64 `json:"bytes"`
}

// workerPhases is one worker's duration-weighted phase breakdown.
type workerPhases struct {
	Worker       uint32 `json:"worker"`
	ProcessingNs int64  `json:"processing_ns"`
	IdleNs       int64  `json:"idle_ns"`
	BarrierNs    int64  `json:"barrier_ns"`
	GVTNs        int64  `json:"gvt_ns"`
	Transitions  int64  `json:"transitions"`
}

// faultCount is one fault kind's occurrence count.
type faultCount struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// faultAnalysis aggregates injected faults and watchdog reactions.
type faultAnalysis struct {
	Total   int64        `json:"total"`
	ByKind  []faultCount `json:"by_kind"`
	FirstNs int64        `json:"first_ns"`
	LastNs  int64        `json:"last_ns"`
}

// nodeShare is one node's row of the imbalance analysis. Lag is the
// node's commit-frontier lag: at each GVT round, the new GVT minus the
// highest virtual timestamp the node has committed so far — how far the
// node's committed horizon trails the cluster's. A straggling node shows
// a persistently large lag; migrations shrink it.
type nodeShare struct {
	Node      int     `json:"node"`
	Committed int64   `json:"committed"`
	Share     float64 `json:"share"`
	MeanLag   float64 `json:"mean_lag"`
	MaxLag    float64 `json:"max_lag"`
	LPsIn     int64   `json:"lps_in"`
	LPsOut    int64   `json:"lps_out"`
}

// migrationPoint is one LP migration in commit order.
type migrationPoint struct {
	LP      uint32 `json:"lp"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Round   int64  `json:"round"`
	Events  uint32 `json:"events"`
	AtNanos int64  `json:"at_ns"`
}

// imbalanceAnalysis is the per-node load picture. Node placement is
// replayed from the trace: LPs start on their block-contiguous home
// nodes (inferred from the node and LP id ranges) and follow Migration
// records, so committed-event attribution tracks the live placement.
type imbalanceAnalysis struct {
	Nodes          []nodeShare      `json:"nodes"`
	MaxShare       float64          `json:"max_share"`
	MinShare       float64          `json:"min_share"`
	Migrations     int64            `json:"migrations"`
	MigratedEvents int64            `json:"migrated_events"`
	Moves          []migrationPoint `json:"moves,omitempty"`
}

// perLPSpread summarizes committed-event counts across LPs.
type perLPSpread struct {
	LPs  int     `json:"lps"`
	Min  int64   `json:"min"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

// nodeUtilization is one node's row of the utilization analysis: the
// fraction of observation intervals (between consecutive Round records)
// in which the node committed at least one event. A conservative node
// blocked waiting for a null-message promise or the window edge shows a
// low utilization; Time Warp nodes stay busy but may be undone later.
type nodeUtilization struct {
	Node         int     `json:"node"`
	ActiveRounds int64   `json:"active_rounds"`
	Utilization  float64 `json:"utilization"`
}

// utilizationAnalysis is the desynchronization picture: per-node useful
// work plus the roughness of the cluster's virtual-time horizon. At each
// Round record the per-node commit frontiers (highest committed
// timestamp so far) are sampled; width is max-min across nodes and
// stddev the per-round standard deviation, both averaged over rounds. A
// smooth horizon (small width) means the nodes advance in lockstep —
// the signature of the window protocol; null messages let the horizon
// fray up to the lookahead chain.
type utilizationAnalysis struct {
	Rounds            int64             `json:"rounds"`
	Nodes             []nodeUtilization `json:"nodes"`
	MinUtilization    float64           `json:"min_utilization"`
	MeanUtilization   float64           `json:"mean_utilization"`
	MeanHorizonWidth  float64           `json:"mean_horizon_width"`
	MeanHorizonStddev float64           `json:"mean_horizon_stddev"`
}

// analysis is the whole -json document.
type analysis struct {
	Schema         string               `json:"schema"`
	TraceVersion   int                  `json:"trace_version"`
	Commits        int64                `json:"commits"`
	MaxT           float64              `json:"max_t"`
	CommitTimeline []timeBucket         `json:"commit_timeline"`
	PerLP          *perLPSpread         `json:"per_lp,omitempty"`
	Rounds         []roundPoint         `json:"efficiency_timeline"`
	SwitchPoints   []switchPoint        `json:"switch_points"`
	Rollbacks      rollbackAnalysis     `json:"rollbacks"`
	MPI            []nodeBandwidth      `json:"mpi_bandwidth"`
	Phases         []workerPhases       `json:"phase_breakdown"`
	Faults         *faultAnalysis       `json:"faults,omitempty"`
	Imbalance      *imbalanceAnalysis   `json:"imbalance,omitempty"`
	Utilization    *utilizationAnalysis `json:"utilization,omitempty"`
}

// phaseState tracks one worker's open phase interval while scanning.
type phaseState struct {
	phase uint8
	since int64
	agg   workerPhases
}

// imbMark remembers where a Round or Migration record sat in the record
// stream relative to the Commit records (at = commits seen before it),
// so the imbalance replay can interleave them in original order.
type imbMark struct {
	kind uint8 // markRound or markMigration
	idx  int   // index into the rounds / migrations slice
	at   int   // commit count when the record was read
}

const (
	markRound = uint8(iota)
	markMigration
)

func main() {
	buckets := flag.Int("buckets", 20, "timeline resolution (virtual-time buckets)")
	asJSON := flag.Bool("json", false, "emit the analyses as one JSON document")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-buckets n] [-json] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	a, err := analyze(f, *buckets)
	if err != nil {
		// The reader's errors carry the byte offset of the failure.
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	render(a)
}

// analyze reads one binary trace and assembles the full -json document.
func analyze(f io.Reader, buckets int) (*analysis, error) {
	var (
		commits    []trace.Commit
		rounds     []trace.Round
		rollbacks  []trace.Rollback
		sends      []trace.MPISend
		faults     []trace.Fault
		migrations []trace.Migration
		marks      []imbMark
		phases     = map[uint32]*phaseState{}
		maxAt      int64
	)
	r := trace.NewReader(f)
	seeAt := func(at int64) {
		if at > maxAt {
			maxAt = at
		}
	}
	err := r.ForEach(trace.Visitor{
		Commit: func(c trace.Commit) { commits = append(commits, c) },
		Round: func(rd trace.Round) {
			marks = append(marks, imbMark{kind: markRound, idx: len(rounds), at: len(commits)})
			rounds = append(rounds, rd)
			seeAt(rd.AtNanos)
		},
		Rollback: func(rb trace.Rollback) {
			rollbacks = append(rollbacks, rb)
			seeAt(rb.AtNanos)
		},
		MPISend: func(m trace.MPISend) { sends = append(sends, m); seeAt(m.AtNanos) },
		MPIRecv: func(m trace.MPIRecv) { seeAt(m.AtNanos) },
		Fault:   func(ft trace.Fault) { faults = append(faults, ft); seeAt(ft.AtNanos) },
		Migration: func(mg trace.Migration) {
			marks = append(marks, imbMark{kind: markMigration, idx: len(migrations), at: len(commits)})
			migrations = append(migrations, mg)
			seeAt(mg.AtNanos)
		},
		Phase: func(p trace.Phase) {
			st := phases[p.Worker]
			if st == nil {
				st = &phaseState{phase: p.Phase, since: p.AtNanos}
				st.agg.Worker = p.Worker
				phases[p.Worker] = st
			} else {
				st.addUntil(p.AtNanos)
				st.phase = p.Phase
				st.since = p.AtNanos
			}
			st.agg.Transitions++
			seeAt(p.AtNanos)
		},
	})
	if err != nil {
		return nil, err
	}
	version, _ := r.Version()

	a := build(version, buckets, commits, rounds, rollbacks, sends, faults, phases, maxAt)
	a.Imbalance = buildImbalance(commits, rounds, migrations, marks, sends)
	a.Utilization = buildUtilization(commits, rounds, migrations, marks, sends)
	return a, nil
}

// addUntil closes the worker's open phase interval at time at.
func (st *phaseState) addUntil(at int64) {
	d := at - st.since
	if d < 0 {
		d = 0
	}
	switch st.phase {
	case trace.PhaseProcessing:
		st.agg.ProcessingNs += d
	case trace.PhaseIdle:
		st.agg.IdleNs += d
	case trace.PhaseBarrier:
		st.agg.BarrierNs += d
	case trace.PhaseGVT:
		st.agg.GVTNs += d
	}
}

// build assembles every analysis from the collected records.
func build(version, buckets int, commits []trace.Commit, rounds []trace.Round,
	rollbacks []trace.Rollback, sends []trace.MPISend, faults []trace.Fault,
	phases map[uint32]*phaseState, maxAt int64) *analysis {

	a := &analysis{
		Schema:         Schema,
		TraceVersion:   version,
		Commits:        int64(len(commits)),
		CommitTimeline: []timeBucket{},
		Rounds:         []roundPoint{},
		SwitchPoints:   []switchPoint{},
		MPI:            []nodeBandwidth{},
		Phases:         []workerPhases{},
	}
	a.Rollbacks.Depths = []depthBucket{}

	// Commit timeline and per-LP spread.
	perLP := map[uint32]int64{}
	for _, c := range commits {
		if c.T > a.MaxT {
			a.MaxT = c.T
		}
		perLP[c.LP]++
	}
	if len(commits) > 0 && a.MaxT > 0 {
		hist := make([]int64, buckets)
		for _, c := range commits {
			i := int(c.T / a.MaxT * float64(buckets))
			if i >= buckets {
				i = buckets - 1
			}
			hist[i]++
		}
		for i, h := range hist {
			a.CommitTimeline = append(a.CommitTimeline, timeBucket{
				T0:    float64(i) * a.MaxT / float64(buckets),
				T1:    float64(i+1) * a.MaxT / float64(buckets),
				Count: h,
			})
		}
		counts := make([]int64, 0, len(perLP))
		var total int64
		for _, c := range perLP {
			counts = append(counts, c)
			total += c
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
		a.PerLP = &perLPSpread{
			LPs: len(counts), Min: counts[0],
			P50: counts[len(counts)/2], P90: counts[len(counts)*9/10],
			Max: counts[len(counts)-1], Mean: float64(total) / float64(len(counts)),
		}
	}

	// Efficiency timeline + CA-GVT switch points.
	for i, rd := range rounds {
		a.Rounds = append(a.Rounds, roundPoint{
			Round: rd.Round, GVT: rd.GVT, AtNanos: rd.AtNanos,
			Sync: rd.Sync, Efficiency: rd.Efficiency,
		})
		if i > 0 && rd.Sync != rounds[i-1].Sync {
			to := "async"
			if rd.Sync {
				to = "sync"
			}
			a.SwitchPoints = append(a.SwitchPoints, switchPoint{
				Round: rd.Round, AtNanos: rd.AtNanos, To: to,
			})
		}
	}

	// Rollback-cascade depth distribution (log2 buckets).
	const depthBuckets = 24
	var strag, anti [depthBuckets]int64
	for _, rb := range rollbacks {
		a.Rollbacks.Episodes++
		a.Rollbacks.Undone += int64(rb.Depth)
		if int64(rb.Depth) > a.Rollbacks.MaxDepth {
			a.Rollbacks.MaxDepth = int64(rb.Depth)
		}
		i := 0
		for d := int64(rb.Depth); d > 1; d >>= 1 {
			i++
		}
		if i >= depthBuckets {
			i = depthBuckets - 1
		}
		if rb.Anti {
			a.Rollbacks.Anti++
			anti[i]++
		} else {
			a.Rollbacks.Stragglers++
			strag[i]++
		}
	}
	if a.Rollbacks.Episodes > 0 {
		a.Rollbacks.MeanDepth = float64(a.Rollbacks.Undone) / float64(a.Rollbacks.Episodes)
	}
	for i := 0; i < depthBuckets; i++ {
		if strag[i] == 0 && anti[i] == 0 {
			continue
		}
		// Bucket i holds depths in [2^i, 2^(i+1)-1].
		le := int64(1)<<(i+1) - 1
		if le > a.Rollbacks.MaxDepth {
			le = a.Rollbacks.MaxDepth
		}
		a.Rollbacks.Depths = append(a.Rollbacks.Depths, depthBucket{
			Le: le, Straggler: strag[i], Anti: anti[i],
		})
	}

	// Per-node MPI bandwidth timeline.
	perNode := map[int]*nodeBandwidth{}
	for _, m := range sends {
		nb := perNode[int(m.Src)]
		if nb == nil {
			nb = &nodeBandwidth{Node: int(m.Src)}
			perNode[int(m.Src)] = nb
		}
		nb.Messages++
		nb.Bytes += int64(m.Bytes)
	}
	if len(sends) > 0 && maxAt > 0 {
		for _, nb := range perNode {
			nb.Timeline = make([]byteBucket, buckets)
			for i := range nb.Timeline {
				nb.Timeline[i] = byteBucket{
					T0Nanos: int64(i) * maxAt / int64(buckets),
					T1Nanos: int64(i+1) * maxAt / int64(buckets),
				}
			}
		}
		for _, m := range sends {
			i := int(m.AtNanos * int64(buckets) / maxAt)
			if i >= buckets {
				i = buckets - 1
			}
			perNode[int(m.Src)].Timeline[i].Bytes += int64(m.Bytes)
		}
	}
	nodeIDs := make([]int, 0, len(perNode))
	for id := range perNode {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Ints(nodeIDs)
	for _, id := range nodeIDs {
		a.MPI = append(a.MPI, *perNode[id])
	}

	// Fault summary: per-kind counts in kind order plus time span.
	if len(faults) > 0 {
		fa := &faultAnalysis{Total: int64(len(faults)), FirstNs: faults[0].AtNanos}
		var byKind [trace.NumFaultKinds]int64
		for _, ft := range faults {
			if int(ft.Kind) < len(byKind) {
				byKind[ft.Kind]++
			}
			if ft.AtNanos < fa.FirstNs {
				fa.FirstNs = ft.AtNanos
			}
			if ft.AtNanos > fa.LastNs {
				fa.LastNs = ft.AtNanos
			}
		}
		for k, c := range byKind {
			if c > 0 {
				fa.ByKind = append(fa.ByKind, faultCount{Kind: trace.FaultName(uint8(k)), Count: c})
			}
		}
		a.Faults = fa
	}

	// Worker phase breakdown: close each open interval at the last
	// simulated timestamp seen in the trace.
	workerIDs := make([]uint32, 0, len(phases))
	for id := range phases {
		workerIDs = append(workerIDs, id)
	}
	sort.Slice(workerIDs, func(i, j int) bool { return workerIDs[i] < workerIDs[j] })
	for _, id := range workerIDs {
		st := phases[id]
		st.addUntil(maxAt)
		st.since = maxAt
		a.Phases = append(a.Phases, st.agg)
	}
	return a
}

// buildImbalance replays the trace's committed stream against the live
// LP placement to produce the per-node load picture. The cluster shape
// is inferred from the records themselves: node count from the highest
// node id on MPI and migration records, LP count from the highest LP id,
// and the engine's block-contiguous static placement fills in each LP's
// home node. Migration records then re-home LPs mid-stream, in original
// record order. Returns nil for single-node traces — there is no
// between-node balance to analyze.
func buildImbalance(commits []trace.Commit, rounds []trace.Round,
	migrations []trace.Migration, marks []imbMark, sends []trace.MPISend) *imbalanceAnalysis {

	maxNode := 0
	for _, m := range sends {
		if int(m.Src) > maxNode {
			maxNode = int(m.Src)
		}
		if int(m.Dst) > maxNode {
			maxNode = int(m.Dst)
		}
	}
	for _, mg := range migrations {
		if int(mg.SrcNode) > maxNode {
			maxNode = int(mg.SrcNode)
		}
		if int(mg.DstNode) > maxNode {
			maxNode = int(mg.DstNode)
		}
	}
	nodes := maxNode + 1
	if nodes < 2 || len(commits) == 0 {
		return nil
	}
	maxLP := 0
	for _, c := range commits {
		if int(c.LP) > maxLP {
			maxLP = int(c.LP)
		}
	}
	for _, mg := range migrations {
		if int(mg.LP) > maxLP {
			maxLP = int(mg.LP)
		}
	}
	lpsPerNode := (maxLP + nodes) / nodes // ceil((maxLP+1)/nodes)
	home := func(lp uint32) int {
		n := int(lp) / lpsPerNode
		if n >= nodes {
			n = nodes - 1
		}
		return n
	}

	var (
		loc       = map[uint32]int{} // only LPs moved off their home node
		committed = make([]int64, nodes)
		frontier  = make([]float64, nodes)
		lagSum    = make([]float64, nodes)
		maxLag    = make([]float64, nodes)
		lagRounds int64
		in        = make([]int64, nodes)
		out       = make([]int64, nodes)
	)
	attribute := func(c trace.Commit) {
		n, moved := loc[c.LP]
		if !moved {
			n = home(c.LP)
		}
		committed[n]++
		if c.T > frontier[n] {
			frontier[n] = c.T
		}
	}
	ci := 0
	for _, mk := range marks {
		for ; ci < mk.at; ci++ {
			attribute(commits[ci])
		}
		switch mk.kind {
		case markRound:
			gvt := rounds[mk.idx].GVT
			lagRounds++
			for n := 0; n < nodes; n++ {
				lag := gvt - frontier[n]
				if lag < 0 {
					lag = 0
				}
				lagSum[n] += lag
				if lag > maxLag[n] {
					maxLag[n] = lag
				}
			}
		case markMigration:
			mg := migrations[mk.idx]
			loc[mg.LP] = int(mg.DstNode)
			out[mg.SrcNode]++
			in[mg.DstNode]++
		}
	}
	for ; ci < len(commits); ci++ {
		attribute(commits[ci])
	}

	a := &imbalanceAnalysis{Nodes: make([]nodeShare, 0, nodes), MinShare: 1}
	total := int64(len(commits))
	for n := 0; n < nodes; n++ {
		s := nodeShare{
			Node: n, Committed: committed[n],
			Share:  float64(committed[n]) / float64(total),
			MaxLag: maxLag[n],
			LPsIn:  in[n], LPsOut: out[n],
		}
		if lagRounds > 0 {
			s.MeanLag = lagSum[n] / float64(lagRounds)
		}
		if s.Share > a.MaxShare {
			a.MaxShare = s.Share
		}
		if s.Share < a.MinShare {
			a.MinShare = s.Share
		}
		a.Nodes = append(a.Nodes, s)
	}
	for _, mg := range migrations {
		a.Migrations++
		a.MigratedEvents += int64(mg.Events)
		a.Moves = append(a.Moves, migrationPoint{
			LP: mg.LP, Src: int(mg.SrcNode), Dst: int(mg.DstNode),
			Round: mg.Round, Events: mg.Events, AtNanos: mg.AtNanos,
		})
	}
	return a
}

// buildUtilization replays the committed stream against the Round
// records to measure desynchronization: how often each node does useful
// work between observations, and how ragged the cluster's virtual-time
// horizon is. Node inference and live LP placement follow
// buildImbalance. Returns nil for single-node traces or traces without
// Round records — there is nothing to desynchronize from.
func buildUtilization(commits []trace.Commit, rounds []trace.Round,
	migrations []trace.Migration, marks []imbMark, sends []trace.MPISend) *utilizationAnalysis {

	maxNode := 0
	for _, m := range sends {
		if int(m.Src) > maxNode {
			maxNode = int(m.Src)
		}
		if int(m.Dst) > maxNode {
			maxNode = int(m.Dst)
		}
	}
	for _, mg := range migrations {
		if int(mg.SrcNode) > maxNode {
			maxNode = int(mg.SrcNode)
		}
		if int(mg.DstNode) > maxNode {
			maxNode = int(mg.DstNode)
		}
	}
	nodes := maxNode + 1
	if nodes < 2 || len(commits) == 0 || len(rounds) == 0 {
		return nil
	}
	maxLP := 0
	for _, c := range commits {
		if int(c.LP) > maxLP {
			maxLP = int(c.LP)
		}
	}
	for _, mg := range migrations {
		if int(mg.LP) > maxLP {
			maxLP = int(mg.LP)
		}
	}
	lpsPerNode := (maxLP + nodes) / nodes
	home := func(lp uint32) int {
		n := int(lp) / lpsPerNode
		if n >= nodes {
			n = nodes - 1
		}
		return n
	}

	var (
		loc      = map[uint32]int{} // only LPs moved off their home node
		active   = make([]bool, nodes)
		activeCt = make([]int64, nodes)
		frontier = make([]float64, nodes)
		roundsN  int64
		widthSum float64
		sdSum    float64
	)
	attribute := func(c trace.Commit) {
		n, moved := loc[c.LP]
		if !moved {
			n = home(c.LP)
		}
		active[n] = true
		if c.T > frontier[n] {
			frontier[n] = c.T
		}
	}
	ci := 0
	for _, mk := range marks {
		for ; ci < mk.at; ci++ {
			attribute(commits[ci])
		}
		switch mk.kind {
		case markRound:
			roundsN++
			for n := range active {
				if active[n] {
					activeCt[n]++
				}
				active[n] = false
			}
			lo, hi, sum := frontier[0], frontier[0], 0.0
			for _, f := range frontier {
				if f < lo {
					lo = f
				}
				if f > hi {
					hi = f
				}
				sum += f
			}
			widthSum += hi - lo
			mean := sum / float64(nodes)
			varSum := 0.0
			for _, f := range frontier {
				varSum += (f - mean) * (f - mean)
			}
			sdSum += math.Sqrt(varSum / float64(nodes))
		case markMigration:
			loc[migrations[mk.idx].LP] = int(migrations[mk.idx].DstNode)
		}
	}
	// Commits after the final Round record fall outside the observation
	// window and are ignored, keeping every node's denominator the
	// number of Round records.

	a := &utilizationAnalysis{
		Rounds:            roundsN,
		Nodes:             make([]nodeUtilization, 0, nodes),
		MinUtilization:    1,
		MeanHorizonWidth:  widthSum / float64(roundsN),
		MeanHorizonStddev: sdSum / float64(roundsN),
	}
	for n := 0; n < nodes; n++ {
		u := float64(activeCt[n]) / float64(roundsN)
		a.Nodes = append(a.Nodes, nodeUtilization{Node: n, ActiveRounds: activeCt[n], Utilization: u})
		if u < a.MinUtilization {
			a.MinUtilization = u
		}
		a.MeanUtilization += u / float64(nodes)
	}
	return a
}

// render prints the human-readable report.
func render(a *analysis) {
	fmt.Printf("trace: format v%d, %d committed events, %d GVT rounds, virtual time span [0, %.4g]\n",
		a.TraceVersion, a.Commits, len(a.Rounds), a.MaxT)

	if len(a.CommitTimeline) > 0 {
		fmt.Println("\ncommit timeline (virtual time buckets):")
		var peak int64
		for _, b := range a.CommitTimeline {
			if b.Count > peak {
				peak = b.Count
			}
		}
		for _, b := range a.CommitTimeline {
			bar := ""
			if peak > 0 {
				bar = repeat('#', int(b.Count*50/peak))
			}
			fmt.Printf("  [%6.4g, %6.4g) %7d %s\n", b.T0, b.T1, b.Count, bar)
		}
	}
	if a.PerLP != nil {
		fmt.Printf("\nper-LP committed events: min=%d p50=%d p90=%d max=%d mean=%.1f\n",
			a.PerLP.Min, a.PerLP.P50, a.PerLP.P90, a.PerLP.Max, a.PerLP.Mean)
	}

	if len(a.Rounds) > 0 {
		sync := 0
		for _, rd := range a.Rounds {
			if rd.Sync {
				sync++
			}
		}
		last := a.Rounds[len(a.Rounds)-1]
		fmt.Printf("\nefficiency timeline: %d rounds (%d synchronous), final GVT %.6g at %.3fms virtual\n",
			len(a.Rounds), sync, last.GVT, float64(last.AtNanos)/1e6)
		stride := len(a.Rounds)/10 + 1
		for i := 0; i < len(a.Rounds); i += stride {
			rd := a.Rounds[i]
			mode := "async"
			if rd.Sync {
				mode = "SYNC"
			}
			fmt.Printf("  round %4d: gvt=%-10.4g eff=%5.1f%% %s\n",
				rd.Round, rd.GVT, 100*rd.Efficiency, mode)
		}
	}
	if len(a.SwitchPoints) > 0 {
		fmt.Printf("\nCA-GVT switch points (%d):\n", len(a.SwitchPoints))
		for _, sp := range a.SwitchPoints {
			fmt.Printf("  round %4d at %9.3fms: -> %s\n", sp.Round, float64(sp.AtNanos)/1e6, sp.To)
		}
	}

	if a.Rollbacks.Episodes > 0 {
		rb := &a.Rollbacks
		fmt.Printf("\nrollback cascades: %d episodes (%d straggler, %d anti), %d events undone, depth mean=%.1f max=%d\n",
			rb.Episodes, rb.Stragglers, rb.Anti, rb.Undone, rb.MeanDepth, rb.MaxDepth)
		fmt.Println("  depth distribution (episodes with depth <= N):")
		for _, b := range rb.Depths {
			fmt.Printf("    <=%6d: %6d straggler, %6d anti\n", b.Le, b.Straggler, b.Anti)
		}
	}

	if a.Faults != nil {
		fmt.Printf("\nfaults: %d injected/observed over [%.3f, %.3f]ms virtual\n",
			a.Faults.Total, float64(a.Faults.FirstNs)/1e6, float64(a.Faults.LastNs)/1e6)
		for _, fc := range a.Faults.ByKind {
			fmt.Printf("  %-18s %7d\n", fc.Kind, fc.Count)
		}
	}

	if len(a.MPI) > 0 {
		fmt.Println("\nper-node MPI bandwidth (outbound data plane):")
		for _, nb := range a.MPI {
			fmt.Printf("  node %2d: %d msgs, %d bytes\n", nb.Node, nb.Messages, nb.Bytes)
			if len(nb.Timeline) > 0 {
				var peak int64
				for _, b := range nb.Timeline {
					if b.Bytes > peak {
						peak = b.Bytes
					}
				}
				for _, b := range nb.Timeline {
					if b.Bytes == 0 {
						continue
					}
					fmt.Printf("    [%8.3f, %8.3f)ms %9d B %s\n",
						float64(b.T0Nanos)/1e6, float64(b.T1Nanos)/1e6, b.Bytes,
						repeat('#', int(b.Bytes*40/peak)))
				}
			}
		}
	}

	if a.Imbalance != nil {
		im := a.Imbalance
		fmt.Printf("\nper-node load imbalance (share spread %.1f%%..%.1f%%):\n",
			100*im.MinShare, 100*im.MaxShare)
		fmt.Println("  node  committed   share   mean-lag    max-lag  lps-in  lps-out")
		for _, n := range im.Nodes {
			fmt.Printf("  %4d  %9d  %5.1f%%  %9.4g  %9.4g  %6d  %7d\n",
				n.Node, n.Committed, 100*n.Share, n.MeanLag, n.MaxLag, n.LPsIn, n.LPsOut)
		}
		if im.Migrations > 0 {
			fmt.Printf("  migrations: %d LPs moved, %d pending events shipped\n",
				im.Migrations, im.MigratedEvents)
			for _, mv := range im.Moves {
				fmt.Printf("    round %4d at %9.3fms: LP %4d node %d -> %d (%d events)\n",
					mv.Round, float64(mv.AtNanos)/1e6, mv.LP, mv.Src, mv.Dst, mv.Events)
			}
		} else {
			fmt.Println("  migrations: none")
		}
	}

	if a.Utilization != nil {
		ut := a.Utilization
		fmt.Printf("\nper-node utilization over %d observation rounds (min %.1f%%, mean %.1f%%):\n",
			ut.Rounds, 100*ut.MinUtilization, 100*ut.MeanUtilization)
		fmt.Println("  node  active-rounds  utilization")
		for _, n := range ut.Nodes {
			fmt.Printf("  %4d  %13d  %10.1f%%\n", n.Node, n.ActiveRounds, 100*n.Utilization)
		}
		fmt.Printf("  horizon roughness: mean width %.4g, mean stddev %.4g (virtual time)\n",
			ut.MeanHorizonWidth, ut.MeanHorizonStddev)
	}

	if len(a.Phases) > 0 {
		fmt.Println("\nworker phase breakdown (virtual time):")
		fmt.Println("  worker  processing      idle   barrier       gvt")
		for _, ph := range a.Phases {
			total := ph.ProcessingNs + ph.IdleNs + ph.BarrierNs + ph.GVTNs
			if total == 0 {
				total = 1
			}
			fmt.Printf("  %6d  %9.1f%% %8.1f%% %8.1f%% %8.1f%%\n", ph.Worker,
				100*float64(ph.ProcessingNs)/float64(total),
				100*float64(ph.IdleNs)/float64(total),
				100*float64(ph.BarrierNs)/float64(total),
				100*float64(ph.GVTNs)/float64(total))
		}
	}
}

func repeat(c byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
