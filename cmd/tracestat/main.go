// Command tracestat analyzes a binary run trace produced with
// `phold -traceout` (or any engine run with a trace writer): GVT
// progress, commit-rate timeline, per-LP activity spread, efficiency
// timeline with CA-GVT switch points, rollback-cascade depth
// distribution, per-node MPI bandwidth timeline and worker phase
// breakdown.
//
//	go run ./cmd/phold -gvt ca -scenario mixed -traceout run.trace
//	go run ./cmd/tracestat run.trace
//	go run ./cmd/tracestat -json run.trace > analysis.json
//
// Malformed traces exit with status 1 and the byte offset of the
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

// Schema identifies the -json document layout.
const Schema = "cagvt.tracestat/1"

// timeBucket is one virtual-time slice of a timeline.
type timeBucket struct {
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Count int64   `json:"count"`
}

// roundPoint is one GVT round on the efficiency timeline.
type roundPoint struct {
	Round      int64   `json:"round"`
	GVT        float64 `json:"gvt"`
	AtNanos    int64   `json:"at_ns"`
	Sync       bool    `json:"sync"`
	Efficiency float64 `json:"efficiency"`
}

// switchPoint is a CA-GVT mode transition: the round where the Sync
// flag flipped relative to the previous round.
type switchPoint struct {
	Round   int64  `json:"round"`
	AtNanos int64  `json:"at_ns"`
	To      string `json:"to"` // "sync" or "async"
}

// depthBucket is one rollback-depth histogram bucket (depth <= Le).
type depthBucket struct {
	Le        int64 `json:"le"`
	Straggler int64 `json:"straggler"`
	Anti      int64 `json:"anti"`
}

// rollbackAnalysis aggregates rollback episodes.
type rollbackAnalysis struct {
	Episodes   int64         `json:"episodes"`
	Undone     int64         `json:"undone"`
	Stragglers int64         `json:"stragglers"`
	Anti       int64         `json:"anti"`
	MaxDepth   int64         `json:"max_depth"`
	MeanDepth  float64       `json:"mean_depth"`
	Depths     []depthBucket `json:"depth_histogram"`
}

// nodeBandwidth is one node's outbound MPI traffic over simulated time.
type nodeBandwidth struct {
	Node     int          `json:"node"`
	Messages int64        `json:"messages"`
	Bytes    int64        `json:"bytes"`
	Timeline []byteBucket `json:"timeline"`
}

// byteBucket is one simulated-time slice of MPI traffic.
type byteBucket struct {
	T0Nanos int64 `json:"t0_ns"`
	T1Nanos int64 `json:"t1_ns"`
	Bytes   int64 `json:"bytes"`
}

// workerPhases is one worker's duration-weighted phase breakdown.
type workerPhases struct {
	Worker       uint32 `json:"worker"`
	ProcessingNs int64  `json:"processing_ns"`
	IdleNs       int64  `json:"idle_ns"`
	BarrierNs    int64  `json:"barrier_ns"`
	GVTNs        int64  `json:"gvt_ns"`
	Transitions  int64  `json:"transitions"`
}

// faultCount is one fault kind's occurrence count.
type faultCount struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// faultAnalysis aggregates injected faults and watchdog reactions.
type faultAnalysis struct {
	Total   int64        `json:"total"`
	ByKind  []faultCount `json:"by_kind"`
	FirstNs int64        `json:"first_ns"`
	LastNs  int64        `json:"last_ns"`
}

// perLPSpread summarizes committed-event counts across LPs.
type perLPSpread struct {
	LPs  int     `json:"lps"`
	Min  int64   `json:"min"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

// analysis is the whole -json document.
type analysis struct {
	Schema         string           `json:"schema"`
	TraceVersion   int              `json:"trace_version"`
	Commits        int64            `json:"commits"`
	MaxT           float64          `json:"max_t"`
	CommitTimeline []timeBucket     `json:"commit_timeline"`
	PerLP          *perLPSpread     `json:"per_lp,omitempty"`
	Rounds         []roundPoint     `json:"efficiency_timeline"`
	SwitchPoints   []switchPoint    `json:"switch_points"`
	Rollbacks      rollbackAnalysis `json:"rollbacks"`
	MPI            []nodeBandwidth  `json:"mpi_bandwidth"`
	Phases         []workerPhases   `json:"phase_breakdown"`
	Faults         *faultAnalysis   `json:"faults,omitempty"`
}

// phaseState tracks one worker's open phase interval while scanning.
type phaseState struct {
	phase uint8
	since int64
	agg   workerPhases
}

func main() {
	buckets := flag.Int("buckets", 20, "timeline resolution (virtual-time buckets)")
	asJSON := flag.Bool("json", false, "emit the analyses as one JSON document")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-buckets n] [-json] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	var (
		commits   []trace.Commit
		rounds    []trace.Round
		rollbacks []trace.Rollback
		sends     []trace.MPISend
		faults    []trace.Fault
		phases    = map[uint32]*phaseState{}
		maxAt     int64
	)
	r := trace.NewReader(f)
	seeAt := func(at int64) {
		if at > maxAt {
			maxAt = at
		}
	}
	err = r.ForEach(trace.Visitor{
		Commit: func(c trace.Commit) { commits = append(commits, c) },
		Round:  func(rd trace.Round) { rounds = append(rounds, rd); seeAt(rd.AtNanos) },
		Rollback: func(rb trace.Rollback) {
			rollbacks = append(rollbacks, rb)
			seeAt(rb.AtNanos)
		},
		MPISend: func(m trace.MPISend) { sends = append(sends, m); seeAt(m.AtNanos) },
		MPIRecv: func(m trace.MPIRecv) { seeAt(m.AtNanos) },
		Fault:   func(ft trace.Fault) { faults = append(faults, ft); seeAt(ft.AtNanos) },
		Phase: func(p trace.Phase) {
			st := phases[p.Worker]
			if st == nil {
				st = &phaseState{phase: p.Phase, since: p.AtNanos}
				st.agg.Worker = p.Worker
				phases[p.Worker] = st
			} else {
				st.addUntil(p.AtNanos)
				st.phase = p.Phase
				st.since = p.AtNanos
			}
			st.agg.Transitions++
			seeAt(p.AtNanos)
		},
	})
	if err != nil {
		// The reader's errors carry the byte offset of the failure.
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	version, _ := r.Version()

	a := build(version, *buckets, commits, rounds, rollbacks, sends, faults, phases, maxAt)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	render(a)
}

// addUntil closes the worker's open phase interval at time at.
func (st *phaseState) addUntil(at int64) {
	d := at - st.since
	if d < 0 {
		d = 0
	}
	switch st.phase {
	case trace.PhaseProcessing:
		st.agg.ProcessingNs += d
	case trace.PhaseIdle:
		st.agg.IdleNs += d
	case trace.PhaseBarrier:
		st.agg.BarrierNs += d
	case trace.PhaseGVT:
		st.agg.GVTNs += d
	}
}

// build assembles every analysis from the collected records.
func build(version, buckets int, commits []trace.Commit, rounds []trace.Round,
	rollbacks []trace.Rollback, sends []trace.MPISend, faults []trace.Fault,
	phases map[uint32]*phaseState, maxAt int64) *analysis {

	a := &analysis{
		Schema:         Schema,
		TraceVersion:   version,
		Commits:        int64(len(commits)),
		CommitTimeline: []timeBucket{},
		Rounds:         []roundPoint{},
		SwitchPoints:   []switchPoint{},
		MPI:            []nodeBandwidth{},
		Phases:         []workerPhases{},
	}
	a.Rollbacks.Depths = []depthBucket{}

	// Commit timeline and per-LP spread.
	perLP := map[uint32]int64{}
	for _, c := range commits {
		if c.T > a.MaxT {
			a.MaxT = c.T
		}
		perLP[c.LP]++
	}
	if len(commits) > 0 && a.MaxT > 0 {
		hist := make([]int64, buckets)
		for _, c := range commits {
			i := int(c.T / a.MaxT * float64(buckets))
			if i >= buckets {
				i = buckets - 1
			}
			hist[i]++
		}
		for i, h := range hist {
			a.CommitTimeline = append(a.CommitTimeline, timeBucket{
				T0:    float64(i) * a.MaxT / float64(buckets),
				T1:    float64(i+1) * a.MaxT / float64(buckets),
				Count: h,
			})
		}
		counts := make([]int64, 0, len(perLP))
		var total int64
		for _, c := range perLP {
			counts = append(counts, c)
			total += c
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
		a.PerLP = &perLPSpread{
			LPs: len(counts), Min: counts[0],
			P50: counts[len(counts)/2], P90: counts[len(counts)*9/10],
			Max: counts[len(counts)-1], Mean: float64(total) / float64(len(counts)),
		}
	}

	// Efficiency timeline + CA-GVT switch points.
	for i, rd := range rounds {
		a.Rounds = append(a.Rounds, roundPoint{
			Round: rd.Round, GVT: rd.GVT, AtNanos: rd.AtNanos,
			Sync: rd.Sync, Efficiency: rd.Efficiency,
		})
		if i > 0 && rd.Sync != rounds[i-1].Sync {
			to := "async"
			if rd.Sync {
				to = "sync"
			}
			a.SwitchPoints = append(a.SwitchPoints, switchPoint{
				Round: rd.Round, AtNanos: rd.AtNanos, To: to,
			})
		}
	}

	// Rollback-cascade depth distribution (log2 buckets).
	const depthBuckets = 24
	var strag, anti [depthBuckets]int64
	for _, rb := range rollbacks {
		a.Rollbacks.Episodes++
		a.Rollbacks.Undone += int64(rb.Depth)
		if int64(rb.Depth) > a.Rollbacks.MaxDepth {
			a.Rollbacks.MaxDepth = int64(rb.Depth)
		}
		i := 0
		for d := int64(rb.Depth); d > 1; d >>= 1 {
			i++
		}
		if i >= depthBuckets {
			i = depthBuckets - 1
		}
		if rb.Anti {
			a.Rollbacks.Anti++
			anti[i]++
		} else {
			a.Rollbacks.Stragglers++
			strag[i]++
		}
	}
	if a.Rollbacks.Episodes > 0 {
		a.Rollbacks.MeanDepth = float64(a.Rollbacks.Undone) / float64(a.Rollbacks.Episodes)
	}
	for i := 0; i < depthBuckets; i++ {
		if strag[i] == 0 && anti[i] == 0 {
			continue
		}
		// Bucket i holds depths in [2^i, 2^(i+1)-1].
		le := int64(1)<<(i+1) - 1
		if le > a.Rollbacks.MaxDepth {
			le = a.Rollbacks.MaxDepth
		}
		a.Rollbacks.Depths = append(a.Rollbacks.Depths, depthBucket{
			Le: le, Straggler: strag[i], Anti: anti[i],
		})
	}

	// Per-node MPI bandwidth timeline.
	perNode := map[int]*nodeBandwidth{}
	for _, m := range sends {
		nb := perNode[int(m.Src)]
		if nb == nil {
			nb = &nodeBandwidth{Node: int(m.Src)}
			perNode[int(m.Src)] = nb
		}
		nb.Messages++
		nb.Bytes += int64(m.Bytes)
	}
	if len(sends) > 0 && maxAt > 0 {
		for _, nb := range perNode {
			nb.Timeline = make([]byteBucket, buckets)
			for i := range nb.Timeline {
				nb.Timeline[i] = byteBucket{
					T0Nanos: int64(i) * maxAt / int64(buckets),
					T1Nanos: int64(i+1) * maxAt / int64(buckets),
				}
			}
		}
		for _, m := range sends {
			i := int(m.AtNanos * int64(buckets) / maxAt)
			if i >= buckets {
				i = buckets - 1
			}
			perNode[int(m.Src)].Timeline[i].Bytes += int64(m.Bytes)
		}
	}
	nodeIDs := make([]int, 0, len(perNode))
	for id := range perNode {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Ints(nodeIDs)
	for _, id := range nodeIDs {
		a.MPI = append(a.MPI, *perNode[id])
	}

	// Fault summary: per-kind counts in kind order plus time span.
	if len(faults) > 0 {
		fa := &faultAnalysis{Total: int64(len(faults)), FirstNs: faults[0].AtNanos}
		var byKind [trace.NumFaultKinds]int64
		for _, ft := range faults {
			if int(ft.Kind) < len(byKind) {
				byKind[ft.Kind]++
			}
			if ft.AtNanos < fa.FirstNs {
				fa.FirstNs = ft.AtNanos
			}
			if ft.AtNanos > fa.LastNs {
				fa.LastNs = ft.AtNanos
			}
		}
		for k, c := range byKind {
			if c > 0 {
				fa.ByKind = append(fa.ByKind, faultCount{Kind: trace.FaultName(uint8(k)), Count: c})
			}
		}
		a.Faults = fa
	}

	// Worker phase breakdown: close each open interval at the last
	// simulated timestamp seen in the trace.
	workerIDs := make([]uint32, 0, len(phases))
	for id := range phases {
		workerIDs = append(workerIDs, id)
	}
	sort.Slice(workerIDs, func(i, j int) bool { return workerIDs[i] < workerIDs[j] })
	for _, id := range workerIDs {
		st := phases[id]
		st.addUntil(maxAt)
		st.since = maxAt
		a.Phases = append(a.Phases, st.agg)
	}
	return a
}

// render prints the human-readable report.
func render(a *analysis) {
	fmt.Printf("trace: format v%d, %d committed events, %d GVT rounds, virtual time span [0, %.4g]\n",
		a.TraceVersion, a.Commits, len(a.Rounds), a.MaxT)

	if len(a.CommitTimeline) > 0 {
		fmt.Println("\ncommit timeline (virtual time buckets):")
		var peak int64
		for _, b := range a.CommitTimeline {
			if b.Count > peak {
				peak = b.Count
			}
		}
		for _, b := range a.CommitTimeline {
			bar := ""
			if peak > 0 {
				bar = repeat('#', int(b.Count*50/peak))
			}
			fmt.Printf("  [%6.4g, %6.4g) %7d %s\n", b.T0, b.T1, b.Count, bar)
		}
	}
	if a.PerLP != nil {
		fmt.Printf("\nper-LP committed events: min=%d p50=%d p90=%d max=%d mean=%.1f\n",
			a.PerLP.Min, a.PerLP.P50, a.PerLP.P90, a.PerLP.Max, a.PerLP.Mean)
	}

	if len(a.Rounds) > 0 {
		sync := 0
		for _, rd := range a.Rounds {
			if rd.Sync {
				sync++
			}
		}
		last := a.Rounds[len(a.Rounds)-1]
		fmt.Printf("\nefficiency timeline: %d rounds (%d synchronous), final GVT %.6g at %.3fms virtual\n",
			len(a.Rounds), sync, last.GVT, float64(last.AtNanos)/1e6)
		stride := len(a.Rounds)/10 + 1
		for i := 0; i < len(a.Rounds); i += stride {
			rd := a.Rounds[i]
			mode := "async"
			if rd.Sync {
				mode = "SYNC"
			}
			fmt.Printf("  round %4d: gvt=%-10.4g eff=%5.1f%% %s\n",
				rd.Round, rd.GVT, 100*rd.Efficiency, mode)
		}
	}
	if len(a.SwitchPoints) > 0 {
		fmt.Printf("\nCA-GVT switch points (%d):\n", len(a.SwitchPoints))
		for _, sp := range a.SwitchPoints {
			fmt.Printf("  round %4d at %9.3fms: -> %s\n", sp.Round, float64(sp.AtNanos)/1e6, sp.To)
		}
	}

	if a.Rollbacks.Episodes > 0 {
		rb := &a.Rollbacks
		fmt.Printf("\nrollback cascades: %d episodes (%d straggler, %d anti), %d events undone, depth mean=%.1f max=%d\n",
			rb.Episodes, rb.Stragglers, rb.Anti, rb.Undone, rb.MeanDepth, rb.MaxDepth)
		fmt.Println("  depth distribution (episodes with depth <= N):")
		for _, b := range rb.Depths {
			fmt.Printf("    <=%6d: %6d straggler, %6d anti\n", b.Le, b.Straggler, b.Anti)
		}
	}

	if a.Faults != nil {
		fmt.Printf("\nfaults: %d injected/observed over [%.3f, %.3f]ms virtual\n",
			a.Faults.Total, float64(a.Faults.FirstNs)/1e6, float64(a.Faults.LastNs)/1e6)
		for _, fc := range a.Faults.ByKind {
			fmt.Printf("  %-18s %7d\n", fc.Kind, fc.Count)
		}
	}

	if len(a.MPI) > 0 {
		fmt.Println("\nper-node MPI bandwidth (outbound data plane):")
		for _, nb := range a.MPI {
			fmt.Printf("  node %2d: %d msgs, %d bytes\n", nb.Node, nb.Messages, nb.Bytes)
			if len(nb.Timeline) > 0 {
				var peak int64
				for _, b := range nb.Timeline {
					if b.Bytes > peak {
						peak = b.Bytes
					}
				}
				for _, b := range nb.Timeline {
					if b.Bytes == 0 {
						continue
					}
					fmt.Printf("    [%8.3f, %8.3f)ms %9d B %s\n",
						float64(b.T0Nanos)/1e6, float64(b.T1Nanos)/1e6, b.Bytes,
						repeat('#', int(b.Bytes*40/peak)))
				}
			}
		}
	}

	if len(a.Phases) > 0 {
		fmt.Println("\nworker phase breakdown (virtual time):")
		fmt.Println("  worker  processing      idle   barrier       gvt")
		for _, ph := range a.Phases {
			total := ph.ProcessingNs + ph.IdleNs + ph.BarrierNs + ph.GVTNs
			if total == 0 {
				total = 1
			}
			fmt.Printf("  %6d  %9.1f%% %8.1f%% %8.1f%% %8.1f%%\n", ph.Worker,
				100*float64(ph.ProcessingNs)/float64(total),
				100*float64(ph.IdleNs)/float64(total),
				100*float64(ph.BarrierNs)/float64(total),
				100*float64(ph.GVTNs)/float64(total))
		}
	}
}

func repeat(c byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
