// Command bench runs a fixed set of baseline simulation cells and emits
// their metrics as one machine-readable JSON document. Every metric is
// derived from *virtual* time (the simulator's deterministic clock), so
// the output is bit-stable across machines and reruns: the checked-in
// BENCH_baseline.json can be diffed against a fresh run to spot
// performance regressions the same way a golden test spots functional
// ones.
//
//	go run ./cmd/bench                 # writes BENCH_baseline.json
//	go run ./cmd/bench -out -          # JSON to stdout
//	make bench                         # telemetry-overhead gate + baseline
//
// The real-time figure benchmarks stay in bench_test.go (`go test
// -bench`); this command is their deterministic companion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/phold"
	"repro/internal/trace"
)

// Schema identifies the baseline document layout.
const Schema = "cagvt.bench-baseline/1"

// cell is one baseline configuration and its measured results.
type cell struct {
	Name     string  `json:"name"`
	Nodes    int     `json:"nodes"`
	GVT      string  `json:"gvt"`
	Comm     string  `json:"comm"`
	Workload string  `json:"workload"`
	Queue    string  `json:"queue,omitempty"`
	Balance  string  `json:"balance,omitempty"`
	Faults   string  `json:"faults,omitempty"`
	EndTime  float64 `json:"end_time"`
	Seed     uint64  `json:"seed"`

	Committed      int64   `json:"committed"`
	Processed      int64   `json:"processed"`
	WallNanos      int64   `json:"wall_ns"`
	Rate           float64 `json:"rate"`
	Efficiency     float64 `json:"efficiency"`
	GVTRounds      int64   `json:"gvt_rounds"`
	MPIMessages    int64   `json:"mpi_messages"`
	Migrations     int64   `json:"migrations,omitempty"`
	CommitChecksum string  `json:"commit_checksum"`
}

// document is the whole baseline file.
type document struct {
	Schema string `json:"schema"`
	Cells  []cell `json:"cells"`
}

// spec declares one cell's configuration before measurement.
type spec struct {
	name     string
	nodes    int
	gvt      core.GVTKind
	comm     core.CommMode
	workload string // "comp" | "comm"
	queue    string
	balance  string
	faults   string
	end      float64
	metrics  bool // attach sampler + trace (telemetry-overhead cell)
}

const benchSeed = 1

func specs() []spec {
	return []spec{
		{name: "mattern/comp", nodes: 4, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comp", end: 15},
		{name: "barrier/comp", nodes: 4, gvt: core.GVTBarrier, comm: core.CommDedicated, workload: "comp", end: 15},
		{name: "ca/comp", nodes: 4, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", end: 15},
		{name: "mattern/comm", nodes: 4, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comm", end: 15},
		{name: "ca/comm", nodes: 4, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comm", end: 15},
		{name: "samadi/comm", nodes: 2, gvt: core.GVTSamadi, comm: core.CommDedicated, workload: "comm", end: 15},
		{name: "queue-heap/comp", nodes: 2, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comp", queue: "heap", end: 15},
		{name: "queue-calendar/comp", nodes: 2, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comp", queue: "calendar", end: 15},
		{name: "telemetry/comp", nodes: 2, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", end: 15, metrics: true},
		{name: "straggler-static/comp", nodes: 2, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", balance: "static", faults: "straggler", end: 60},
		{name: "straggler-greedy/comp", nodes: 2, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", balance: "greedy", faults: "straggler", end: 60},
	}
}

func run(s spec) (cell, error) {
	top := cluster.Topology{Nodes: s.nodes, WorkersPerNode: 4, LPsPerWorker: 16}
	base := phold.ComputationDominated()
	if s.workload == "comm" {
		base = phold.CommunicationDominated()
	}
	cfg := core.Config{
		Topology:    top,
		GVT:         s.gvt,
		GVTInterval: 4,
		Comm:        s.comm,
		EndTime:     s.end,
		Seed:        benchSeed,
		QueueKind:   s.queue,
		Balance:     s.balance,
		Model:       phold.New(phold.Params{Topology: top, Base: base}),
	}
	if s.faults != "" {
		plan, err := fabric.Scenario(s.faults, s.nodes)
		if err != nil {
			return cell{}, err
		}
		cfg.Faults = plan
		cfg.FaultLabel = s.faults
	}
	if s.metrics {
		cfg.Metrics = metrics.NewRecorder()
		cfg.Trace = trace.NewWriter(io.Discard)
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		return cell{}, err
	}
	return cell{
		Name: s.name, Nodes: s.nodes, GVT: s.gvt.String(), Comm: s.comm.String(),
		Workload: s.workload, Queue: s.queue, Balance: s.balance, Faults: s.faults,
		EndTime: s.end, Seed: benchSeed,
		Committed: r.Workers.Committed, Processed: r.Workers.Processed,
		WallNanos: int64(r.WallTime), Rate: r.EventRate(), Efficiency: r.Efficiency(),
		GVTRounds: r.GVTRounds, MPIMessages: r.MPIMessages, Migrations: r.Migrations,
		CommitChecksum: metrics.Checksum(r.CommitChecksum),
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file (- for stdout)")
	flag.Parse()

	doc := document{Schema: Schema}
	for _, s := range specs() {
		c, err := run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: %-24s rate=%.4g ev/s eff=%.1f%% wall=%dns\n",
			c.Name, c.Rate, 100*c.Efficiency, c.WallNanos)
		doc.Cells = append(doc.Cells, c)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "bench: wrote %d cells to %s\n", len(doc.Cells), *out)
	}
}
