// Command bench runs a fixed set of baseline simulation cells and emits
// two machine-readable JSON documents:
//
//   - BENCH_baseline.json (-out): every metric is derived from *virtual*
//     time (the simulator's deterministic clock), so the file is
//     bit-stable across machines and reruns. The checked-in copy is
//     diffed EXACTLY against a fresh run by `cmd/benchdiff` — the same
//     way a golden test spots functional regressions.
//
//   - BENCH_host.json (-hostout): host wall-clock and allocation metrics
//     for the same cells, plus a harness sweep measuring `-jobs`
//     parallel speedup and output identity. Host numbers vary run to
//     run, so this file is never checked in; CI compares it against the
//     PR base ref with `cmd/benchdiff`'s tolerance bands instead.
//
//     go run ./cmd/bench                 # writes both documents
//     go run ./cmd/bench -out - -hostout "" # virtual JSON to stdout only
//     make bench                         # telemetry-overhead gate + both
//
// The real-time figure benchmarks stay in bench_test.go (`go test
// -bench`); this command is their deterministic companion.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/conservative"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/phold"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Schema identifies the baseline document layout.
const Schema = "cagvt.bench-baseline/1"

// HostSchema identifies the host-metrics document layout.
const HostSchema = "cagvt.bench-host/1"

// cell is one baseline configuration and its measured results.
type cell struct {
	Name     string  `json:"name"`
	Nodes    int     `json:"nodes"`
	Engine   string  `json:"engine,omitempty"` // "" (Time Warp) | "conservative"
	Sync     string  `json:"sync,omitempty"`   // conservative protocol
	GVT      string  `json:"gvt,omitempty"`
	Comm     string  `json:"comm,omitempty"`
	Workload string  `json:"workload"`
	Queue    string  `json:"queue,omitempty"`
	Balance  string  `json:"balance,omitempty"`
	Faults   string  `json:"faults,omitempty"`
	EndTime  float64 `json:"end_time"`
	Seed     uint64  `json:"seed"`

	Committed      int64   `json:"committed"`
	Processed      int64   `json:"processed"`
	WallNanos      int64   `json:"wall_ns"`
	Rate           float64 `json:"rate"`
	Efficiency     float64 `json:"efficiency"`
	GVTRounds      int64   `json:"gvt_rounds"`
	MPIMessages    int64   `json:"mpi_messages"`
	NullMessages   int64   `json:"null_messages,omitempty"`
	Migrations     int64   `json:"migrations,omitempty"`
	CommitChecksum string  `json:"commit_checksum"`
}

// document is the whole baseline file.
type document struct {
	Schema string `json:"schema"`
	Cells  []cell `json:"cells"`
}

// hostCell is one cell's host-side (machine-dependent) measurements.
type hostCell struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`     // host wall-clock for the run
	Allocs       uint64  `json:"allocs"`      // heap allocations during the run
	AllocBytes   uint64  `json:"alloc_bytes"` // bytes allocated during the run
	EventsPerSec float64 `json:"events_per_sec"`
	// Pool counters are deterministic (they depend only on the event
	// lifecycle, not the host) but live here because they are allocator
	// telemetry, not simulation results.
	PoolNews     int64 `json:"pool_news"`
	PoolRecycled int64 `json:"pool_recycled"`
}

// hostSweep measures the host-parallel harness: the same mini experiment
// suite run with -jobs 1 and -jobs N, with byte-identity verified.
type hostSweep struct {
	Jobs        int     `json:"jobs"`
	Cells       int     `json:"cells"` // experiment cells in the suite
	WallNSJobs1 int64   `json:"wall_ns_jobs1"`
	WallNSJobsN int64   `json:"wall_ns_jobsn"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"` // jobs-1 and jobs-N output byte-identical
}

// hostDoc is the whole host-metrics file.
type hostDoc struct {
	Schema     string     `json:"schema"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Cells      []hostCell `json:"cells"`
	Sweep      *hostSweep `json:"sweep,omitempty"`
}

// spec declares one cell's configuration before measurement.
type spec struct {
	name     string
	nodes    int
	engine   string // "" (Time Warp) | "conservative"
	sync     conservative.SyncKind
	gvt      core.GVTKind
	comm     core.CommMode
	workload string // "comp" | "comm"
	queue    string
	balance  string
	faults   string
	end      float64
	metrics  bool // attach sampler + trace (telemetry-overhead cell)
}

const benchSeed = 1

func specs() []spec {
	return []spec{
		{name: "mattern/comp", nodes: 4, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comp", end: 15},
		{name: "barrier/comp", nodes: 4, gvt: core.GVTBarrier, comm: core.CommDedicated, workload: "comp", end: 15},
		{name: "ca/comp", nodes: 4, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", end: 15},
		{name: "mattern/comm", nodes: 4, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comm", end: 15},
		{name: "ca/comm", nodes: 4, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comm", end: 15},
		{name: "samadi/comm", nodes: 2, gvt: core.GVTSamadi, comm: core.CommDedicated, workload: "comm", end: 15},
		{name: "queue-heap/comp", nodes: 2, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comp", queue: "heap", end: 15},
		{name: "queue-calendar/comp", nodes: 2, gvt: core.GVTMattern, comm: core.CommDedicated, workload: "comp", queue: "calendar", end: 15},
		{name: "telemetry/comp", nodes: 2, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", end: 15, metrics: true},
		{name: "straggler-static/comp", nodes: 2, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", balance: "static", faults: "straggler", end: 60},
		{name: "straggler-greedy/comp", nodes: 2, gvt: core.GVTControlled, comm: core.CommDedicated, workload: "comp", balance: "greedy", faults: "straggler", end: 60},
		{name: "conservative-nullmsg/comp", nodes: 4, engine: "conservative", sync: conservative.SyncNullMsg, workload: "comp", end: 15},
		{name: "conservative-window/comp", nodes: 4, engine: "conservative", sync: conservative.SyncWindow, workload: "comp", end: 15},
		{name: "conservative-nullmsg/comm", nodes: 4, engine: "conservative", sync: conservative.SyncNullMsg, workload: "comm", end: 15},
	}
}

func run(s spec) (cell, hostCell, error) {
	top := cluster.Topology{Nodes: s.nodes, WorkersPerNode: 4, LPsPerWorker: 16}
	base := phold.ComputationDominated()
	if s.workload == "comm" {
		base = phold.CommunicationDominated()
	}
	if s.engine == "conservative" {
		return runConservative(s, top, base)
	}
	cfg := core.Config{
		Topology:    top,
		GVT:         s.gvt,
		GVTInterval: 4,
		Comm:        s.comm,
		EndTime:     s.end,
		Seed:        benchSeed,
		QueueKind:   s.queue,
		Balance:     s.balance,
		Model:       phold.New(phold.Params{Topology: top, Base: base}),
	}
	if s.faults != "" {
		plan, err := fabric.Scenario(s.faults, s.nodes)
		if err != nil {
			return cell{}, hostCell{}, err
		}
		cfg.Faults = plan
		cfg.FaultLabel = s.faults
	}
	if s.metrics {
		cfg.Metrics = metrics.NewRecorder()
		cfg.Trace = trace.NewWriter(io.Discard)
	}
	// Host measurement brackets the engine run: a GC fence first so a
	// previous cell's garbage doesn't bill this one, then Mallocs/
	// TotalAlloc deltas and wall time around construction + run.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	r, err := core.New(cfg).Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return cell{}, hostCell{}, err
	}
	h := hostCell{
		Name:         s.name,
		WallNS:       wall.Nanoseconds(),
		Allocs:       after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		EventsPerSec: float64(r.Workers.Committed) / wall.Seconds(),
		PoolNews:     r.PoolNews,
		PoolRecycled: r.PoolRecycled,
	}
	return cell{
		Name: s.name, Nodes: s.nodes, GVT: s.gvt.String(), Comm: s.comm.String(),
		Workload: s.workload, Queue: s.queue, Balance: s.balance, Faults: s.faults,
		EndTime: s.end, Seed: benchSeed,
		Committed: r.Workers.Committed, Processed: r.Workers.Processed,
		WallNanos: int64(r.WallTime), Rate: r.EventRate(), Efficiency: r.Efficiency(),
		GVTRounds: r.GVTRounds, MPIMessages: r.MPIMessages, Migrations: r.Migrations,
		CommitChecksum: metrics.Checksum(r.CommitChecksum),
	}, h, nil
}

// runConservative measures one conservative-engine cell with the same
// host-side bracket as the Time Warp path. Conservative cells pin both
// protocols' committed stream (checksum) and their sync traffic (null
// messages, sync rounds via gvt_rounds) into the exact-diffed baseline.
func runConservative(s spec, top cluster.Topology, base phold.Phase) (cell, hostCell, error) {
	params := phold.Params{Topology: top, Base: base}
	la := params
	la.Defaults()
	cfg := conservative.Config{
		Topology:  top,
		Sync:      s.sync,
		Lookahead: vtime.Time(la.Lookahead),
		EndTime:   vtime.Time(s.end),
		Seed:      benchSeed,
		QueueKind: s.queue,
		Model:     phold.New(params),
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	r, err := conservative.New(cfg).Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return cell{}, hostCell{}, err
	}
	h := hostCell{
		Name:         s.name,
		WallNS:       wall.Nanoseconds(),
		Allocs:       after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		EventsPerSec: float64(r.Workers.Committed) / wall.Seconds(),
	}
	return cell{
		Name: s.name, Nodes: s.nodes, Engine: s.engine, Sync: s.sync.String(),
		Workload: s.workload, Queue: s.queue,
		EndTime: s.end, Seed: benchSeed,
		Committed: r.Workers.Committed, Processed: r.Workers.Processed,
		WallNanos: int64(r.WallTime), Rate: r.EventRate(), Efficiency: r.Efficiency(),
		GVTRounds: r.GVTRounds, MPIMessages: r.MPIMessages, NullMessages: r.NullMessages,
		CommitChecksum: metrics.Checksum(r.CommitChecksum),
	}, h, nil
}

// sweepSuite is the mini experiment suite the harness sweep times: two
// multi-series node sweeps, one per workload regime.
func sweepSuite() []string { return []string{"fig5", "fig9"} }

func sweepOptions() harness.Options {
	return harness.Options{
		WorkersPerNode: 4,
		LPsPerWorker:   16,
		EndTime:        12,
		Seed:           benchSeed,
		NodeCounts:     []int{1, 2, 4},
		CAThreshold:    0.80,
		Verbose:        true,
	}
}

// runSweep times the mini suite at -jobs 1 and -jobs N and verifies the
// outputs are byte-identical.
func runSweep(jobs int) *hostSweep {
	pass := func(j int) (string, int64) {
		var buf bytes.Buffer
		start := time.Now()
		for _, id := range sweepSuite() {
			e, ok := harness.Find(id)
			if !ok {
				panic("bench: unknown sweep experiment " + id)
			}
			opt := sweepOptions()
			opt.Jobs = j
			table := e.Execute(opt, &buf)
			table.Render(&buf)
			table.CSV(&buf)
		}
		return buf.String(), time.Since(start).Nanoseconds()
	}
	seqOut, seqNS := pass(1)
	parOut, parNS := pass(jobs)
	cells := 0
	for range sweepSuite() {
		opt := sweepOptions()
		cells += len(opt.NodeCounts)
	}
	sw := &hostSweep{
		Jobs:        jobs,
		Cells:       cells,
		WallNSJobs1: seqNS,
		WallNSJobsN: parNS,
		Identical:   seqOut == parOut,
	}
	if parNS > 0 {
		sw.Speedup = float64(seqNS) / float64(parNS)
	}
	return sw
}

// writeJSON encodes doc to path ("-" for stdout, "" disabled).
func writeJSON(path string, doc any) error {
	if path == "" {
		return nil
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "virtual-time baseline output file (- for stdout, empty to skip)")
	hostOut := flag.String("hostout", "BENCH_host.json", "host wall-clock/alloc output file (- for stdout, empty to skip)")
	sweepJobs := flag.Int("sweepjobs", runtime.GOMAXPROCS(0), "-jobs value for the harness parallel sweep (0 skips; values <2 are raised to 2 so output identity is always checked)")
	flag.Parse()

	doc := document{Schema: Schema}
	host := hostDoc{
		Schema:     HostSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, s := range specs() {
		c, h, err := run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: %-24s rate=%.4g ev/s eff=%.1f%% wall=%dns host=%.0fms allocs=%d recycled=%d\n",
			c.Name, c.Rate, 100*c.Efficiency, c.WallNanos,
			float64(h.WallNS)/1e6, h.Allocs, h.PoolRecycled)
		doc.Cells = append(doc.Cells, c)
		host.Cells = append(host.Cells, h)
	}
	if *hostOut != "" && *sweepJobs > 0 {
		j := *sweepJobs
		if j < 2 {
			j = 2
		}
		host.Sweep = runSweep(j)
		fmt.Fprintf(os.Stderr, "bench: sweep jobs=%d speedup=%.2fx identical=%v\n",
			host.Sweep.Jobs, host.Sweep.Speedup, host.Sweep.Identical)
	}

	if err := writeJSON(*out, doc); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if *out != "" && *out != "-" {
		fmt.Fprintf(os.Stderr, "bench: wrote %d cells to %s\n", len(doc.Cells), *out)
	}
	if err := writeJSON(*hostOut, host); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if *hostOut != "" && *hostOut != "-" {
		fmt.Fprintf(os.Stderr, "bench: wrote %d host cells to %s\n", len(host.Cells), *hostOut)
	}
}
