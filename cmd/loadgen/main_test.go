package main

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/pkg/client"
)

func seedOf(t *testing.T, spec any) uint64 {
	t.Helper()
	m, ok := spec.(map[string]any)
	if !ok {
		t.Fatalf("spec %v is not a map", spec)
	}
	return m["seed"].(uint64)
}

func TestBuildMixShapes(t *testing.T) {
	dup, err := buildMix("duplicate", 10, 3, 100, "phold", 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, s := range dup {
		seen[seedOf(t, s)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("duplicate mix produced %d unique seeds, want 3", len(seen))
	}

	dis, err := buildMix("distinct", 10, 3, 100, "phold", 10)
	if err != nil {
		t.Fatal(err)
	}
	seen = map[uint64]bool{}
	for _, s := range dis {
		seen[seedOf(t, s)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("distinct mix produced %d unique seeds, want 10", len(seen))
	}

	mixed, err := buildMix("mixed", 10, 2, 100, "phold", 10)
	if err != nil {
		t.Fatal(err)
	}
	dupSeen := map[uint64]bool{}
	for i, s := range mixed {
		seed := seedOf(t, s)
		if i%2 == 0 {
			dupSeen[seed] = true
		} else if seed < 1_000_000 {
			t.Fatalf("mixed odd slot %d reused the duplicate pool (seed %d)", i, seed)
		}
	}
	if len(dupSeen) != 2 {
		t.Fatalf("mixed duplicate pool has %d seeds, want 2", len(dupSeen))
	}

	if _, err := buildMix("chaotic", 1, 1, 1, "phold", 10); err == nil {
		t.Fatal("unknown mix must be rejected")
	}
	if _, err := buildMix("duplicate", 1, 0, 1, "phold", 10); err == nil {
		t.Fatal("non-positive -distinct must be rejected")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(ds, tc.p); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := percentile([]time.Duration{7 * time.Millisecond}, 99); got != 7*time.Millisecond {
		t.Errorf("singleton p99 = %v", got)
	}
}

func TestSummarizeCountsAndRatios(t *testing.T) {
	results := []result{
		{latency: 10 * time.Millisecond, reportSize: 1, cacheHit: true},
		{latency: 20 * time.Millisecond, reportSize: 1, cacheHit: true, storeHit: true},
		{latency: 30 * time.Millisecond, reportSize: 1, rejected: 2, honored: 1},
		{err: errors.New("boom")},
		{}, // neither result nor error: lost
	}
	sum := summarize(results, 2*time.Second)
	if sum.Requests != 5 || sum.Completed != 3 || sum.Failed != 1 || sum.Lost != 1 {
		t.Fatalf("counts: %+v", sum)
	}
	if sum.CacheHits != 2 || sum.CacheHitRatio < 0.66 || sum.CacheHitRatio > 0.67 {
		t.Fatalf("cache: %+v", sum)
	}
	if sum.StoreHits != 1 {
		t.Fatalf("store hits = %d", sum.StoreHits)
	}
	if sum.Rejected429 != 2 || sum.Honored429 != 1 {
		t.Fatalf("429s: %+v", sum)
	}
	// 3 completed + 1 failed + 2 rejected = 6 attempts.
	if sum.Rate429 < 0.33 || sum.Rate429 > 0.34 {
		t.Fatalf("rate_429 = %v", sum.Rate429)
	}
	if sum.Throughput != 1.5 {
		t.Fatalf("throughput = %v, want 1.5", sum.Throughput)
	}
	if sum.Errors["transport"] != 1 {
		t.Fatalf("errors: %v", sum.Errors)
	}
}

func TestEvalSLOsGates(t *testing.T) {
	delta := int64(3)
	sum := &Summary{
		Completed: 10, CacheHitRatio: 0.9, LatencyP99Ms: 120,
		Honored429: 2, Rate429: 0.1, ExecutionsDelta: &delta,
	}
	o := options{
		sloCacheHitMin: 0.8,
		sloP99Max:      200 * time.Millisecond,
		sloMin429:      1,
		sloMax429Rate:  0.5,
		sloExactExecs:  3,
	}
	for _, s := range evalSLOs(sum, o) {
		if !s.OK {
			t.Fatalf("SLO %s failed on a passing summary: %s", s.Name, s.Detail)
		}
	}

	// Each violation must flip exactly its own gate.
	bads := []struct {
		name   string
		mutate func(*Summary, *options)
	}{
		{"lost", func(s *Summary, _ *options) { s.Lost = 1 }},
		{"failed", func(s *Summary, _ *options) { s.Failed = 1 }},
		{"cache_hit_ratio", func(s *Summary, _ *options) { s.CacheHitRatio = 0.5 }},
		{"latency_p99", func(s *Summary, _ *options) { s.LatencyP99Ms = 500 }},
		{"honored_429", func(s *Summary, _ *options) { s.Honored429 = 0 }},
		{"rate_429", func(s *Summary, _ *options) { s.Rate429 = 0.9 }},
		{"executions", func(s *Summary, _ *options) { d := int64(4); s.ExecutionsDelta = &d }},
	}
	for _, bad := range bads {
		s2 := *sum
		o2 := o
		bad.mutate(&s2, &o2)
		failed := map[string]bool{}
		for _, r := range evalSLOs(&s2, o2) {
			if !r.OK {
				failed[r.Name] = true
			}
		}
		if !failed[bad.name] || len(failed) != 1 {
			t.Errorf("mutating %s failed gates %v, want exactly itself", bad.name, failed)
		}
	}

	// Exact-executions with /stats unavailable must fail closed.
	s3 := *sum
	s3.ExecutionsDelta = nil
	var execGate *SLOResult
	for _, r := range evalSLOs(&s3, o) {
		if r.Name == "executions" {
			r := r
			execGate = &r
		}
	}
	if execGate == nil || execGate.OK {
		t.Fatalf("executions gate without /stats = %+v, want a failure", execGate)
	}

	// Disabled gates don't grade.
	names := map[string]bool{}
	for _, r := range evalSLOs(sum, options{sloCacheHitMin: -1, sloMin429: -1, sloMax429Rate: -1, sloExactExecs: -1}) {
		names[r.Name] = true
	}
	if len(names) != 2 || !names["lost"] || !names["failed"] {
		t.Fatalf("disabled-gate run graded %v, want only lost+failed", names)
	}
}

func TestErrClassBuckets(t *testing.T) {
	cases := map[string]error{
		"queue_full_exhausted": &client.QueueFullError{},
		"job_deadline":         client.ErrDeadline,
		"cancelled":            client.ErrCancelled,
		"not_found":            client.ErrNotFound,
		"run_timeout":          context.DeadlineExceeded,
		"job_failed":           &client.JobFailedError{},
		"transport":            errors.New("connection refused"),
	}
	for want, err := range cases {
		if got := errClass(err); got != want {
			t.Errorf("errClass(%v) = %q, want %q", err, got, want)
		}
	}
}
