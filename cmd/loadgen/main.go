// Command loadgen replays a configurable job mix against a simd daemon
// or simdcluster router at a target request rate and grades the answers
// against SLOs.
//
// Pacing is open-loop: request i is launched at T0 + i/rps regardless
// of how many earlier requests have completed, so a slow service sees
// the full arrival rate and its admission control (429 + Retry-After)
// is actually exercised rather than hidden by a closed feedback loop.
// A -max-inflight bound caps the damage a stalled service can do to the
// generator itself.
//
// The mix decides how content-addressing behaves under load:
//
//	duplicate: n requests over -distinct unique specs — the cache and
//	           in-flight dedup should absorb almost everything
//	distinct:  every request is a unique spec — every job must execute
//	mixed:     alternating draws from both pools
//
// On exit, a machine-readable JSON summary goes to stdout and a human
// table to stderr. Exit status: 0 all SLOs pass, 1 at least one SLO
// failed, 2 the run itself broke (unreachable service, timeout).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/simdclient"
	"repro/pkg/client"
)

func main() {
	os.Exit(run())
}

type options struct {
	addr        string
	n           int
	rps         float64
	mix         string
	distinct    int
	seedBase    uint64
	model       string
	endTime     float64
	maxInflight int
	retries     int
	retryCap    time.Duration
	timeout     time.Duration

	sloCacheHitMin float64
	sloP99Max      time.Duration
	sloMin429      int
	sloMax429Rate  float64
	sloExactExecs  int
	sloMaxLost     int
	sloMaxFailed   int
}

func run() int {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "service base URL")
	flag.IntVar(&o.n, "n", 100, "total requests to issue")
	flag.Float64Var(&o.rps, "rps", 50, "target request rate (open-loop)")
	flag.StringVar(&o.mix, "mix", "duplicate", "job mix: duplicate | distinct | mixed")
	flag.IntVar(&o.distinct, "distinct", 4, "unique specs in the duplicate pool")
	flag.Uint64Var(&o.seedBase, "seed-base", 1, "base RNG seed for generated specs")
	flag.StringVar(&o.model, "model", "phold", "spec model")
	flag.Float64Var(&o.endTime, "end-time", 10, "spec virtual end time")
	flag.IntVar(&o.maxInflight, "max-inflight", 64, "max requests in flight")
	flag.IntVar(&o.retries, "queue-retries", 16, "429 answers absorbed per request before it counts as failed")
	flag.DurationVar(&o.retryCap, "retry-after-cap", 5*time.Second, "cap on an honored Retry-After sleep")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Minute, "whole-run deadline")
	flag.Float64Var(&o.sloCacheHitMin, "slo-cache-hit-min", -1, "SLO: min cache-hit ratio (served without execution); -1 disables")
	flag.DurationVar(&o.sloP99Max, "slo-p99-max", 0, "SLO: max p99 end-to-end latency; 0 disables")
	flag.IntVar(&o.sloMin429, "slo-min-429", -1, "SLO: min honored 429 answers; -1 disables")
	flag.Float64Var(&o.sloMax429Rate, "slo-max-429-rate", -1, "SLO: max 429s per submit attempt; -1 disables")
	flag.IntVar(&o.sloExactExecs, "slo-exact-executions", -1, "SLO: exact engine executions observed via /stats; -1 disables")
	flag.IntVar(&o.sloMaxLost, "slo-max-lost", 0, "SLO: max lost results (always checked)")
	flag.IntVar(&o.sloMaxFailed, "slo-max-failed", 0, "SLO: max failed requests (always checked)")
	flag.Parse()

	if o.n <= 0 || o.rps <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -n and -rps must be positive")
		return 2
	}
	specs, err := buildMix(o.mix, o.n, o.distinct, o.seedBase, o.model, o.endTime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()

	api := simdclient.New(o.addr)
	c := client.New(o.addr)

	execsBefore, statsOK := executions(ctx, api)

	sum, err := fire(ctx, c, specs, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}

	if statsOK {
		if execsAfter, ok := executions(ctx, api); ok {
			d := execsAfter - execsBefore
			sum.ExecutionsDelta = &d
		}
	}

	sum.SLOs = evalSLOs(sum, o)
	printHuman(os.Stderr, sum)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(sum)

	for _, s := range sum.SLOs {
		if !s.OK {
			return 1
		}
	}
	return 0
}

// executions reads the service's engine-execution counter from /stats.
func executions(ctx context.Context, api *simdclient.Client) (int64, bool) {
	var stats struct {
		Executions int64 `json:"executions"`
	}
	if err := api.GetJSONCtx(ctx, "/stats", &stats); err != nil {
		return 0, false
	}
	return stats.Executions, true
}

// buildMix generates the request sequence. Specs are plain JSON maps so
// loadgen exercises the service's own canonicalization, like any
// external client would.
func buildMix(mix string, n, distinct int, seedBase uint64, model string, endTime float64) ([]any, error) {
	if distinct <= 0 {
		return nil, fmt.Errorf("-distinct must be positive, got %d", distinct)
	}
	mk := func(seed uint64) any {
		return map[string]any{"model": model, "end_time": endTime, "seed": seed}
	}
	specs := make([]any, n)
	for i := range specs {
		switch mix {
		case "duplicate":
			specs[i] = mk(seedBase + uint64(i%distinct))
		case "distinct":
			specs[i] = mk(seedBase + uint64(i))
		case "mixed":
			if i%2 == 0 {
				specs[i] = mk(seedBase + uint64((i/2)%distinct))
			} else {
				// Offset far past any duplicate-pool seed.
				specs[i] = mk(seedBase + 1_000_000 + uint64(i))
			}
		default:
			return nil, fmt.Errorf("unknown -mix %q (want duplicate | distinct | mixed)", mix)
		}
	}
	return specs, nil
}

// result is one request's measured outcome.
type result struct {
	latency    time.Duration
	cacheHit   bool // served without a fresh execution (cache_hit_now or deduped_now)
	storeHit   bool
	rejected   int // 429 answers absorbed
	honored    int // of those, how many slept the server's positive hint
	err        error
	reportSize int
}

// fire replays specs open-loop and aggregates a Summary.
func fire(ctx context.Context, c *client.Client, specs []any, o options) (*Summary, error) {
	results := make([]result, len(specs))
	sem := make(chan struct{}, o.maxInflight)
	interval := time.Duration(float64(time.Second) / o.rps)
	start := time.Now()

	var wg sync.WaitGroup
	for i, spec := range specs {
		// Open-loop: wait for this request's scheduled slot, not for
		// earlier requests to finish.
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, fmt.Errorf("run deadline hit while pacing (%d/%d launched): %w", i, len(specs), ctx.Err())
			}
		}
		wg.Add(1)
		go func(idx int, spec any) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results[idx].err = ctx.Err()
				return
			}
			results[idx] = oneRequest(ctx, c, spec, o)
		}(i, spec)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return summarize(results, elapsed), nil
}

// oneRequest runs submit(+retry)→await→report and measures it
// end-to-end: latency is first submit attempt to settled report.
func oneRequest(ctx context.Context, c *client.Client, spec any, o options) result {
	var res result
	t0 := time.Now()
	var sub client.Submission
	for {
		var err error
		sub, err = c.Submit(ctx, spec)
		if err == nil {
			break
		}
		var qf *client.QueueFullError
		if !errors.As(err, &qf) || res.rejected >= o.retries {
			res.err = err
			return res
		}
		res.rejected++
		d := qf.RetryAfter
		if qf.Hinted && d > 0 {
			// Honoring the hint means actually sleeping it (capped).
			if d > o.retryCap {
				d = o.retryCap
			}
			res.honored++
		} else {
			d = 250 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			res.err = ctx.Err()
			return res
		}
	}
	res.cacheHit = sub.CacheHitNow || sub.DedupedNow
	res.storeHit = sub.StoreHit

	st, err := c.Await(ctx, sub.ID)
	if err != nil {
		res.err = err
		return res
	}
	res.storeHit = res.storeHit || st.StoreHit
	report, err := c.Report(ctx, st.ID)
	if err != nil {
		res.err = err
		return res
	}
	res.reportSize = len(report)
	res.latency = time.Since(t0)
	return res
}

// SLOResult grades one SLO.
type SLOResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Summary is the machine-readable run summary printed to stdout.
type Summary struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Lost is requests that produced neither a result nor an error —
	// with a correct generator and service, always zero.
	Lost       int     `json:"lost"`
	DurationS  float64 `json:"duration_s"`
	Throughput float64 `json:"throughput_rps"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// CacheHits counts submissions served without a fresh engine
	// execution (result-cache hit or in-flight dedup); the ratio is over
	// completed requests.
	CacheHits     int     `json:"cache_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	StoreHits     int     `json:"store_hits"`
	StoreHitRatio float64 `json:"store_hit_ratio"`

	Rejected429 int     `json:"rejected_429"`
	Honored429  int     `json:"honored_429"`
	Rate429     float64 `json:"rate_429"` // 429s per submit attempt

	// ExecutionsDelta is the service-side engine-execution count change
	// over the run (from /stats); nil when /stats was unavailable.
	ExecutionsDelta *int64 `json:"executions_delta,omitempty"`

	Errors map[string]int `json:"errors,omitempty"`
	SLOs   []SLOResult    `json:"slos"`
}

// summarize folds per-request results into the run summary.
func summarize(results []result, elapsed time.Duration) *Summary {
	sum := &Summary{Requests: len(results), DurationS: elapsed.Seconds(), Errors: map[string]int{}}
	var latencies []time.Duration
	for _, r := range results {
		sum.Rejected429 += r.rejected
		sum.Honored429 += r.honored
		if r.err != nil {
			sum.Failed++
			sum.Errors[errClass(r.err)]++
			continue
		}
		if r.latency == 0 && r.reportSize == 0 {
			sum.Lost++
			continue
		}
		sum.Completed++
		latencies = append(latencies, r.latency)
		if r.cacheHit {
			sum.CacheHits++
		}
		if r.storeHit {
			sum.StoreHits++
		}
	}
	if sum.Completed > 0 {
		sum.CacheHitRatio = float64(sum.CacheHits) / float64(sum.Completed)
		sum.StoreHitRatio = float64(sum.StoreHits) / float64(sum.Completed)
	}
	if elapsed > 0 {
		sum.Throughput = float64(sum.Completed) / elapsed.Seconds()
	}
	attempts := sum.Completed + sum.Failed + sum.Rejected429
	if attempts > 0 {
		sum.Rate429 = float64(sum.Rejected429) / float64(attempts)
	}
	sum.LatencyP50Ms = ms(percentile(latencies, 50))
	sum.LatencyP95Ms = ms(percentile(latencies, 95))
	sum.LatencyP99Ms = ms(percentile(latencies, 99))
	return sum
}

// errClass buckets an error for the summary's error table.
func errClass(err error) string {
	switch {
	case errors.Is(err, client.ErrQueueFull):
		return "queue_full_exhausted"
	case errors.Is(err, client.ErrDeadline):
		return "job_deadline"
	case errors.Is(err, client.ErrCancelled):
		return "cancelled"
	case errors.Is(err, client.ErrNotFound):
		return "not_found"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "run_timeout"
	}
	var jf *client.JobFailedError
	if errors.As(err, &jf) {
		return "job_failed"
	}
	return "transport"
}

// percentile is the nearest-rank percentile of ds (sorted in place).
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	rank := int(float64(len(ds))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(ds) {
		rank = len(ds) - 1
	}
	return ds[rank]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// evalSLOs grades the summary against the configured SLOs. Lost and
// failed ceilings are always graded; the rest only when enabled.
func evalSLOs(sum *Summary, o options) []SLOResult {
	var slos []SLOResult
	grade := func(name string, ok bool, detail string) {
		slos = append(slos, SLOResult{Name: name, OK: ok, Detail: detail})
	}
	grade("lost", sum.Lost <= o.sloMaxLost,
		fmt.Sprintf("%d lost results (max %d)", sum.Lost, o.sloMaxLost))
	grade("failed", sum.Failed <= o.sloMaxFailed,
		fmt.Sprintf("%d failed requests (max %d)", sum.Failed, o.sloMaxFailed))
	if o.sloCacheHitMin >= 0 {
		grade("cache_hit_ratio", sum.CacheHitRatio >= o.sloCacheHitMin,
			fmt.Sprintf("%.3f (min %.3f)", sum.CacheHitRatio, o.sloCacheHitMin))
	}
	if o.sloP99Max > 0 {
		grade("latency_p99", sum.LatencyP99Ms <= ms(o.sloP99Max),
			fmt.Sprintf("%.1fms (max %s)", sum.LatencyP99Ms, o.sloP99Max))
	}
	if o.sloMin429 >= 0 {
		grade("honored_429", sum.Honored429 >= o.sloMin429,
			fmt.Sprintf("%d honored (min %d)", sum.Honored429, o.sloMin429))
	}
	if o.sloMax429Rate >= 0 {
		grade("rate_429", sum.Rate429 <= o.sloMax429Rate,
			fmt.Sprintf("%.3f per attempt (max %.3f)", sum.Rate429, o.sloMax429Rate))
	}
	if o.sloExactExecs >= 0 {
		if sum.ExecutionsDelta == nil {
			grade("executions", false, "/stats unavailable; cannot verify execution count")
		} else {
			grade("executions", *sum.ExecutionsDelta == int64(o.sloExactExecs),
				fmt.Sprintf("%d engine executions (want exactly %d)", *sum.ExecutionsDelta, o.sloExactExecs))
		}
	}
	return slos
}

// printHuman renders the operator-facing table.
func printHuman(w *os.File, sum *Summary) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "requests\t%d\t(%d completed, %d failed, %d lost)\n",
		sum.Requests, sum.Completed, sum.Failed, sum.Lost)
	fmt.Fprintf(tw, "duration\t%.2fs\t%.1f done/s\n", sum.DurationS, sum.Throughput)
	fmt.Fprintf(tw, "latency\tp50 %.1fms\tp95 %.1fms\tp99 %.1fms\n",
		sum.LatencyP50Ms, sum.LatencyP95Ms, sum.LatencyP99Ms)
	fmt.Fprintf(tw, "cache\t%d hits\tratio %.3f\t(store %d / %.3f)\n",
		sum.CacheHits, sum.CacheHitRatio, sum.StoreHits, sum.StoreHitRatio)
	fmt.Fprintf(tw, "backpressure\t%d x 429\t%d honored\trate %.3f\n",
		sum.Rejected429, sum.Honored429, sum.Rate429)
	if sum.ExecutionsDelta != nil {
		fmt.Fprintf(tw, "executions\t%d\t(service-side delta)\n", *sum.ExecutionsDelta)
	}
	for class, n := range sum.Errors {
		fmt.Fprintf(tw, "error\t%s\tx%d\n", class, n)
	}
	for _, s := range sum.SLOs {
		verdict := "PASS"
		if !s.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "slo\t%s\t%s\t%s\n", s.Name, verdict, s.Detail)
	}
	tw.Flush()
}
