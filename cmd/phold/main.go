// Command phold runs one PHOLD configuration on the simulated cluster and
// prints the run's statistics — the quickest way to poke at the engine.
//
// Examples:
//
//	phold                                  # defaults: 2 nodes, Mattern
//	phold -nodes 8 -gvt barrier -scenario comm
//	phold -gvt ca -scenario mixed -mix 10,15 -v
//	phold -sync window -seq                # conservative engine + oracle check
//	phold -seq                             # sequential baseline + oracle check
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/conservative"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/phold"
	"repro/internal/seq"
	"repro/internal/sim"
	tracepkg "repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 2, "cluster nodes")
		workers  = flag.Int("workers", 8, "worker threads per node")
		lps      = flag.Int("lps", 32, "LPs per worker")
		gvt      = flag.String("gvt", "mattern", "GVT algorithm: barrier | mattern | ca | samadi")
		syncF    = flag.String("sync", "timewarp", "engine synchronization: timewarp (optimistic) | nullmsg | window (conservative)")
		comm     = flag.String("comm", "dedicated", "comm-thread mode: dedicated | combined | shared")
		scenario = flag.String("scenario", "comp", "workload: comp | comm | mixed")
		mix      = flag.String("mix", "10,15", "mixed model X,Y percentages")
		end      = flag.Float64("end", 40, "simulation end time")
		interval = flag.Int("interval", 4, "GVT interval, in 16-event batches per worker")
		thresh   = flag.Float64("threshold", 0.80, "CA-GVT efficiency threshold")
		seed     = flag.Uint64("seed", 1, "master RNG seed")
		queue    = flag.String("queue", "heap", "pending set: heap | calendar")
		faults   = flag.String("faults", "", "fault scenario: "+strings.Join(fabric.ScenarioNames(), " | ")+" (empty: fault-free)")
		balPol   = flag.String("balance", "", "LP load-balancing policy: "+strings.Join(balance.Names(), " | ")+" (empty: static placement)")
		watchdog = flag.Int64("watchdog", 0, "GVT liveness watchdog timeout in virtual µs (0: auto, 2000 when -faults is set)")
		seqCheck = flag.Bool("seq", false, "also run the sequential oracle and verify the commit stream")
		traceTo  = flag.String("traceout", "", "write a binary v2 run trace (commits, rounds, rollbacks, MPI, phases, migrations) to this file")
		reportTo = flag.String("report", "", "write the JSON run report (config, stats, sampled time series) to this file")
		capN     = flag.Int("samplecap", 0, "max samples per telemetry series (0: default 512)")
		every    = flag.Int("sampleevery", 0, "base telemetry sampling stride in GVT rounds (0: every round)")
		verbose  = flag.Bool("v", false, "print per-GVT-round trace")
	)
	flag.Parse()

	top := cluster.Topology{Nodes: *nodes, WorkersPerNode: *workers, LPsPerWorker: *lps}

	var kind core.GVTKind
	switch *gvt {
	case "barrier":
		kind = core.GVTBarrier
	case "mattern":
		kind = core.GVTMattern
	case "ca", "ca-gvt", "cagvt":
		kind = core.GVTControlled
	case "samadi":
		kind = core.GVTSamadi
	default:
		fail("unknown -gvt %q (want barrier | mattern | ca | samadi)", *gvt)
	}
	conservativeRun := false
	var syncKind conservative.SyncKind
	switch *syncF {
	case "timewarp":
	case "nullmsg", "cmb":
		conservativeRun, syncKind = true, conservative.SyncNullMsg
	case "window":
		conservativeRun, syncKind = true, conservative.SyncWindow
	default:
		fail("unknown -sync %q (want timewarp | nullmsg | window)", *syncF)
	}
	var cm core.CommMode
	switch *comm {
	case "dedicated":
		cm = core.CommDedicated
	case "combined":
		cm = core.CommCombined
	case "shared":
		cm = core.CommShared
	default:
		fail("unknown -comm %q", *comm)
	}

	params := phold.Params{Topology: top}
	comp, commPh := phold.ComputationDominated(), phold.CommunicationDominated()
	if *nodes == 1 {
		comp.RemotePct, commPh.RemotePct = 0, 0
	}
	switch *scenario {
	case "comp":
		params.Base = comp
	case "comm":
		params.Base = commPh
	case "mixed":
		parts := strings.Split(*mix, ",")
		if len(parts) != 2 {
			fail("-mix wants X,Y")
		}
		x, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			fail("bad -mix %q", *mix)
		}
		params.Base = comp
		params.Mixed = &phold.MixedModel{
			Comm: commPh, CompFrac: x, CommFrac: y, EndTime: vtime.Time(*end),
		}
	default:
		fail("unknown -scenario %q", *scenario)
	}

	if conservativeRun {
		// The conservative engine never speculates, so the Time Warp
		// resilience knobs have nothing to attach to. Reject them instead
		// of silently ignoring what the user asked for.
		if *faults != "" {
			fail("-faults is a Time Warp feature; the conservative engine (-sync %s) does not support fault injection", *syncF)
		}
		if *balPol != "" {
			fail("-balance is a Time Warp feature; the conservative engine (-sync %s) does not support load balancing", *syncF)
		}
		if *watchdog != 0 {
			fail("-watchdog guards GVT liveness; the conservative engine (-sync %s) has no GVT rounds to watch", *syncF)
		}
		runConservative(syncKind, top, params, *scenario, *end, *seed, *queue,
			*traceTo, *reportTo, *capN, *every, *seqCheck)
		return
	}

	cfg := core.Config{
		Topology:    top,
		GVT:         kind,
		GVTInterval: *interval,
		CAThreshold: *thresh,
		Comm:        cm,
		EndTime:     vtime.Time(*end),
		Seed:        *seed,
		QueueKind:   *queue,
		Balance:     *balPol,
		Model:       phold.New(params),
	}
	if *faults != "" {
		plan, err := fabric.Scenario(*faults, *nodes)
		if err != nil {
			fail("%v", err)
		}
		if plan != nil {
			cfg.Faults = plan
			cfg.FaultLabel = *faults
		} else {
			*faults = "" // "none" is fault-free
		}
	}
	if *watchdog > 0 {
		cfg.WatchdogTimeout = sim.Time(*watchdog) * sim.Microsecond
	}
	if err := func() error { c := cfg; c.Defaults(); return c.Validate() }(); err != nil {
		fail("%v", err)
	}

	var traceFile *os.File
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fail("%v", err)
		}
		traceFile = f
		cfg.Trace = tracepkg.NewWriter(f)
	}
	if *reportTo != "" {
		cfg.Metrics = &metrics.Recorder{MaxSamples: *capN, Every: *every}
	}

	eng := core.New(cfg)
	eng.TraceRounds = *verbose
	r, err := eng.Run()
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("phold: %d nodes x %d workers x %d LPs, %v GVT, %v comm, %s scenario\n",
		*nodes, *workers, *lps, kind, cm, *scenario)
	fmt.Println(r)
	if *balPol != "" && *balPol != "static" && *balPol != "none" {
		fmt.Printf("balance: policy %q — %d LP migrations, %d pending events shipped\n",
			*balPol, r.Migrations, r.MigratedEvents)
	}
	if *faults != "" {
		fmt.Printf("faults: scenario %q — injected %d drops, %d dups, %d jitters, %d window drops\n",
			*faults, r.FaultDrops, r.FaultDups, r.FaultJitters, r.FaultWindowDrops)
		fmt.Printf("transport: %d retransmits, %d dup frames suppressed, %d frames exhausted\n",
			r.Retransmits, r.TransportDups, r.TransportExhausted)
		fmt.Printf("watchdog: %d token restarts, %d barrier fallbacks\n",
			r.WatchdogRestarts, r.WatchdogFallbacks)
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.Flush(); err != nil {
			fail("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fail("trace: %v", err)
		}
		t := cfg.Trace
		fmt.Printf("trace: wrote v%d trace to %s (%d commits, %d rounds, %d rollbacks, %d/%d mpi send/recv, %d phase transitions)\n",
			tracepkg.Version, *traceTo, t.Commits, t.Rounds, t.Rollbacks, t.MPISends, t.MPIRecvs, t.Phases)
	}
	if *reportTo != "" {
		rep := eng.Report(r)
		rep.Config.Label = fmt.Sprintf("phold/%s", *scenario)
		f, err := os.Create(*reportTo)
		if err != nil {
			fail("report: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fail("report: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("report: %v", err)
		}
		fmt.Printf("report: wrote %s (%d round samples, stride %d)\n",
			*reportTo, len(rep.Rounds), rep.SampleStride)
	}
	if *verbose {
		fmt.Println("\nGVT rounds:")
		for _, tr := range eng.RoundTraces() {
			mode := "async"
			if tr.Sync {
				mode = "SYNC"
			}
			fmt.Printf("  #%3d at %-12v gvt=%-10.4g eff=%5.1f%% %s\n",
				tr.Round, tr.At, tr.GVT, 100*tr.Efficiency, mode)
		}
	}

	if *seqCheck {
		ref := seq.New(cfg.Model, top.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
		fmt.Printf("\nsequential oracle: %d events, checksum %x\n", ref.Processed, ref.Checksum)
		if ref.Checksum == r.CommitChecksum && ref.Processed == r.Workers.Committed {
			fmt.Println("oracle check: OK — parallel run committed the identical event stream")
		} else {
			fmt.Println("oracle check: MISMATCH — this is an engine bug")
			os.Exit(1)
		}
	}
}

// runConservative executes the PHOLD workload on the conservative engine
// (null messages or moving window) and mirrors the Time Warp path's
// outputs: summary line, optional trace/report files, oracle check.
func runConservative(sync conservative.SyncKind, top cluster.Topology, params phold.Params,
	scenario string, end float64, seed uint64, queue string,
	traceTo, reportTo string, capN, every int, seqCheck bool) {
	la := params
	la.Defaults()
	cfg := conservative.Config{
		Topology:  top,
		Sync:      sync,
		Lookahead: vtime.Time(la.Lookahead),
		EndTime:   vtime.Time(end),
		Seed:      seed,
		QueueKind: queue,
		Model:     phold.New(params),
	}
	if err := func() error { c := cfg; c.Defaults(); return c.Validate() }(); err != nil {
		fail("%v", err)
	}
	var traceFile *os.File
	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			fail("%v", err)
		}
		traceFile = f
		cfg.Trace = tracepkg.NewWriter(f)
	}
	if reportTo != "" {
		cfg.Metrics = &metrics.Recorder{MaxSamples: capN, Every: every}
	}

	eng := conservative.New(cfg)
	r, err := eng.Run()
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("phold: %d nodes x %d workers x %d LPs, conservative/%v, lookahead %v, %s scenario\n",
		top.Nodes, top.WorkersPerNode, top.LPsPerWorker, sync, cfg.Lookahead, scenario)
	fmt.Println(r)
	fmt.Printf("conservative: %d null messages, %d sync rounds\n", r.NullMessages, r.SyncRounds)
	if cfg.Trace != nil {
		if err := cfg.Trace.Flush(); err != nil {
			fail("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fail("trace: %v", err)
		}
		t := cfg.Trace
		fmt.Printf("trace: wrote v%d trace to %s (%d commits, %d rounds, %d/%d mpi send/recv)\n",
			tracepkg.Version, traceTo, t.Commits, t.Rounds, t.MPISends, t.MPIRecvs)
	}
	if reportTo != "" {
		rep := eng.Report(r)
		rep.Config.Label = fmt.Sprintf("phold/%s", scenario)
		f, err := os.Create(reportTo)
		if err != nil {
			fail("report: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fail("report: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("report: %v", err)
		}
		fmt.Printf("report: wrote %s (%d round samples, stride %d)\n",
			reportTo, len(rep.Rounds), rep.SampleStride)
	}
	if seqCheck {
		ref := seq.New(cfg.Model, top.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
		fmt.Printf("\nsequential oracle: %d events, checksum %x\n", ref.Processed, ref.Checksum)
		if ref.Checksum == r.CommitChecksum && ref.Processed == r.Workers.Committed {
			fmt.Println("oracle check: OK — conservative run committed the identical event stream")
		} else {
			fmt.Println("oracle check: MISMATCH — this is an engine bug")
			os.Exit(1)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "phold: "+format+"\n", args...)
	os.Exit(2)
}
