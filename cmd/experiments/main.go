// Command experiments regenerates the paper's figures and tables on the
// simulated cluster.
//
// Usage:
//
//	experiments -fig all                 # every figure + ablations
//	experiments -fig fig6,fig9           # specific experiments
//	experiments -workers 60 -lps 128     # paper-scale topology
//	experiments -csv out.csv             # machine-readable output
//
// Cells report committed events per virtual second and efficiency, the
// metrics of the paper's evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/balance"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment IDs, comma separated, or 'all' ("+strings.Join(harness.IDs(), ", ")+")")
		workers  = flag.Int("workers", 8, "worker threads per node (paper: 60)")
		lps      = flag.Int("lps", 32, "LPs per worker (paper: 128)")
		end      = flag.Float64("end", 40, "simulation end time (virtual time units)")
		interval = flag.Int("interval", 0, "GVT interval override in 16-event batches (0: per-figure default, 8 for figs 3-4, 4 otherwise)")
		seed     = flag.Uint64("seed", 1, "master RNG seed")
		nodes    = flag.String("nodes", "1,2,4,8", "node counts for weak-scaling sweeps")
		thresh   = flag.Float64("threshold", 0.80, "CA-GVT efficiency threshold")
		syncF    = flag.String("sync", "", "restrict crossover/matrix cells to one engine: timewarp | nullmsg | window (empty: all)")
		faults   = flag.String("faults", "", "run every cell under a fault scenario: "+strings.Join(fabric.ScenarioNames(), " | ")+" (empty: fault-free)")
		balPol   = flag.String("balance", "", "run every cell under an LP load-balancing policy: "+strings.Join(balance.Names(), " | ")+" (empty: static placement)")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		mdPath   = flag.String("md", "", "also write results as markdown tables to this file")
		jsonPath = flag.String("report", "", "also write tables + one telemetry run report per execution as JSON to this file")
		capN     = flag.Int("samplecap", 0, "max telemetry samples per series with -report (0: default)")
		jobsN    = flag.Int("jobs", runtime.GOMAXPROCS(0), "experiment cells to run concurrently on host cores (1: sequential; output is byte-identical for every value)")
		verbose  = flag.Bool("v", false, "print each run as it completes")
	)
	flag.Parse()

	if *jobsN < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -jobs must be >= 1, got %d\n", *jobsN)
		os.Exit(2)
	}
	switch *syncF {
	case "", "timewarp", "nullmsg", "window":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown -sync %q (want timewarp | nullmsg | window)\n", *syncF)
		os.Exit(2)
	}
	opt := harness.Options{
		WorkersPerNode: *workers,
		LPsPerWorker:   *lps,
		EndTime:        vtime.Time(*end),
		GVTInterval:    *interval,
		Seed:           *seed,
		CAThreshold:    *thresh,
		Verbose:        *verbose,
		FaultScenario:  *faults,
		BalancePolicy:  *balPol,
		Sync:           *syncF,
		Jobs:           *jobsN,
	}
	if *faults != "" {
		if _, err := fabric.Scenario(*faults, 1); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	if _, err := balance.New(*balPol, balance.Options{}); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if *jsonPath != "" {
		opt.Reports = metrics.NewReportSet()
		opt.SampleCap = *capN
	}
	for _, part := range strings.Split(*nodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad -nodes value %q\n", part)
			os.Exit(2)
		}
		opt.NodeCounts = append(opt.NodeCounts, n)
	}

	var todo []harness.Experiment
	if *fig == "all" {
		todo = harness.Registry()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have: %s)\n",
					id, strings.Join(harness.IDs(), ", "))
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	var csv, md *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csv = f
	}
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		md = f
	}

	fmt.Printf("topology: %d workers/node, %d LPs/worker; end=%v seed=%d nodes=%v\n\n",
		opt.WorkersPerNode, opt.LPsPerWorker, opt.EndTime, opt.Seed, opt.NodeCounts)
	var tables []harness.Table
	for _, e := range todo {
		table := e.Execute(opt, os.Stdout)
		table.Render(os.Stdout)
		if csv != nil {
			table.CSV(csv)
		}
		if md != nil {
			table.Markdown(md)
		}
		tables = append(tables, table)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := harness.WriteJSON(f, tables, opt.Reports); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d tables, %d run reports)\n", *jsonPath, len(tables), opt.Reports.Len())
	}
}
