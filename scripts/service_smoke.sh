#!/usr/bin/env bash
# End-to-end smoke test for the simulation job service (cmd/simd):
# start the daemon, submit the same small PHOLD job twice, and assert
#   - both submissions succeed over HTTP,
#   - the two run reports are byte-identical,
#   - the second submission is served from the result cache
#     (cache_hit_now=true and the engine executed exactly once),
#   - the full NDJSON event stream replays and terminates with "end",
#   - /metrics agrees: execution, cache-hit and job-state counters all
#     move as expected across the duplicate submission,
#   - /jobs/{id}/flight returns the completed job's recorded rounds,
#   - SIGTERM shuts the daemon down cleanly.
# Needs: go, curl, jq. Used by `make smoke` and the CI service job.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=smoke
. scripts/smoke_lib.sh
smoke_init

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
LOG="${SMOKE_LOG_DIR}/simd.log"
SPEC='{"model":"phold","nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":10,"seed":42}'

echo "smoke: building cmd/simd"
go build -o "${WORK}/simd" ./cmd/simd

echo "smoke: starting simd on ${BASE}"
"${WORK}/simd" -addr "127.0.0.1:${PORT}" -node-id smoke-n1 -workers 2 -cachesize 16 >"${LOG}" 2>&1 &
SIMD_PID=$!
smoke_track "${SIMD_PID}"
wait_healthy "${BASE}" "${SIMD_PID}" "${LOG}"

# The daemon answers as the identity it was launched with — the cluster
# health gate relies on this to catch mis-wired membership.
NODE=$(curl -sf "${BASE}/healthz" | jq -r .node_id)
[[ "${NODE}" == smoke-n1 ]] || fail "/healthz node_id=${NODE} (want smoke-n1)"
NODE=$(curl -sf "${BASE}/stats" | jq -r .node_id)
[[ "${NODE}" == smoke-n1 ]] || fail "/stats node_id=${NODE} (want smoke-n1)"
echo "smoke: daemon identifies as smoke-n1"

# --- first submission: executes for real -----------------------------
CODE1=$(submit_spec "${BASE}" "${SPEC}" "${WORK}/sub1.json")
[[ "${CODE1}" == 202 ]] || fail "first submit returned HTTP ${CODE1} (want 202): $(cat "${WORK}/sub1.json")"
ID1=$(jq -r .id "${WORK}/sub1.json")
echo "smoke: submitted ${ID1}"

wait_job_state "${BASE}" "${ID1}" done
echo "smoke: ${ID1} done"

CODE=$(curl -s -o "${WORK}/report1.json" -w '%{http_code}' "${BASE}/jobs/${ID1}/report")
[[ "${CODE}" == 200 ]] || fail "report fetch returned HTTP ${CODE}"
jq -e . "${WORK}/report1.json" >/dev/null || fail "report is not valid JSON"

# --- event stream: full replay ends with an "end" record -------------
curl -sf "${BASE}/jobs/${ID1}/events" >"${WORK}/events.ndjson"
PROGRESS=$(grep -c '"type":"progress"' "${WORK}/events.ndjson") || true
tail -1 "${WORK}/events.ndjson" | jq -e '.type == "end" and .state == "done"' >/dev/null \
  || fail "event stream did not end cleanly: $(tail -1 "${WORK}/events.ndjson")"
[[ "${PROGRESS}" -gt 0 ]] || fail "event stream replayed no progress lines"
echo "smoke: event stream replayed ${PROGRESS} rounds"

# --- second submission: must be a cache hit, not a re-run ------------
CODE2=$(submit_spec "${BASE}" "${SPEC}" "${WORK}/sub2.json")
[[ "${CODE2}" == 200 ]] || fail "second submit returned HTTP ${CODE2} (want 200 cache hit): $(cat "${WORK}/sub2.json")"
jq -e '.cache_hit_now == true and .state == "done"' "${WORK}/sub2.json" >/dev/null \
  || fail "second submit was not a cache hit: $(cat "${WORK}/sub2.json")"
ID2=$(jq -r .id "${WORK}/sub2.json")

CODE=$(curl -s -o "${WORK}/report2.json" -w '%{http_code}' "${BASE}/jobs/${ID2}/report")
[[ "${CODE}" == 200 ]] || fail "cached report fetch returned HTTP ${CODE}"
cmp -s "${WORK}/report1.json" "${WORK}/report2.json" \
  || fail "cached report is not byte-identical to the executed one"

EXECS=$(curl -sf "${BASE}/stats" | jq -r .executions)
[[ "${EXECS}" == 1 ]] || fail "engine executed ${EXECS} times (want exactly 1)"
echo "smoke: cache hit verified (1 execution, byte-identical reports)"

# --- /metrics: the counters must tell the same story -----------------
# One admitted execution, one cache-hit submission, two finished jobs.
curl -sf "${BASE}/metrics" >"${WORK}/metrics.txt" || fail "GET /metrics failed"

V=$(metric 'simd_executions_total' "${WORK}/metrics.txt") || fail "/metrics missing simd_executions_total"
[[ "${V}" == 1 ]] || fail "simd_executions_total=${V} (want 1)"
V=$(metric 'simd_cache_hits_total' "${WORK}/metrics.txt") || fail "/metrics missing simd_cache_hits_total"
[[ "${V}" == 1 ]] || fail "simd_cache_hits_total=${V} (want 1)"
V=$(metric 'simd_submissions_total{outcome="admitted"}' "${WORK}/metrics.txt") || fail "/metrics missing admitted submissions"
[[ "${V}" == 1 ]] || fail "admitted submissions=${V} (want 1)"
V=$(metric 'simd_submissions_total{outcome="cache_hit"}' "${WORK}/metrics.txt") || fail "/metrics missing cache_hit submissions"
[[ "${V}" == 1 ]] || fail "cache_hit submissions=${V} (want 1)"
V=$(metric 'simd_jobs{state="done"}' "${WORK}/metrics.txt") || fail "/metrics missing done-jobs gauge"
[[ "${V}" == 2 ]] || fail "done jobs=${V} (want 2)"
V=$(metric 'simd_jobs_finished_total{state="done"}' "${WORK}/metrics.txt") || fail "/metrics missing finished-jobs counter"
[[ "${V}" == 2 ]] || fail "finished done jobs=${V} (want 2)"
grep -q '^simd_engine_events_committed_total [1-9]' "${WORK}/metrics.txt" \
  || fail "engine committed-events counter never moved"
echo "smoke: /metrics agrees (1 execution, 1 cache hit, 2 done jobs)"

# --- flight recorder of the completed job ----------------------------
CODE=$(curl -s -o "${WORK}/flight.json" -w '%{http_code}' "${BASE}/jobs/${ID1}/flight")
[[ "${CODE}" == 200 ]] || fail "flight fetch returned HTTP ${CODE}"
jq -e '.state == "done" and .rounds_total > 0 and (.recent | length) > 0' "${WORK}/flight.json" >/dev/null \
  || fail "flight record incomplete: $(cat "${WORK}/flight.json")"
FLIGHT_ROUNDS=$(jq -r .rounds_total "${WORK}/flight.json")
[[ "${FLIGHT_ROUNDS}" == "${PROGRESS}" ]] \
  || fail "flight rounds_total=${FLIGHT_ROUNDS} != streamed progress lines ${PROGRESS}"
echo "smoke: flight recorder holds ${FLIGHT_ROUNDS} rounds for ${ID1}"

# --- graceful shutdown ----------------------------------------------
graceful_stop "${SIMD_PID}"
echo "smoke: PASS"
