#!/usr/bin/env bash
# End-to-end smoke test for the simulation job service (cmd/simd):
# start the daemon, submit the same small PHOLD job twice, and assert
#   - both submissions succeed over HTTP,
#   - the two run reports are byte-identical,
#   - the second submission is served from the result cache
#     (cache_hit_now=true and the engine executed exactly once),
#   - the full NDJSON event stream replays and terminates with "end",
#   - /metrics agrees: execution, cache-hit and job-state counters all
#     move as expected across the duplicate submission,
#   - /jobs/{id}/flight returns the completed job's recorded rounds,
#   - SIGTERM shuts the daemon down cleanly.
# Needs: go, curl, jq. Used by `make smoke` and the CI service job.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SPEC='{"model":"phold","nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":10,"seed":42}'

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

# Always reap the daemon — TERM first, KILL if it lingers — and remove
# the workspace, whether the script passes, fails, or is interrupted.
cleanup() {
  if [[ -n "${SIMD_PID:-}" ]]; then
    kill "${SIMD_PID}" 2>/dev/null || true
    for _ in $(seq 1 20); do
      kill -0 "${SIMD_PID}" 2>/dev/null || break
      sleep 0.2
    done
    kill -9 "${SIMD_PID}" 2>/dev/null || true
    wait "${SIMD_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

echo "smoke: building cmd/simd"
go build -o "${WORK}/simd" ./cmd/simd

echo "smoke: starting simd on ${BASE}"
"${WORK}/simd" -addr "127.0.0.1:${PORT}" -node-id smoke-n1 -workers 2 -cachesize 16 >"${WORK}/simd.log" 2>&1 &
SIMD_PID=$!

for i in $(seq 1 100); do
  curl -sf "${BASE}/healthz" >/dev/null 2>&1 && break
  kill -0 "${SIMD_PID}" 2>/dev/null || { cat "${WORK}/simd.log" >&2; fail "daemon died on startup"; }
  [[ "$i" == 100 ]] && fail "daemon never became healthy"
  sleep 0.1
done

# The daemon answers as the identity it was launched with — the cluster
# health gate relies on this to catch mis-wired membership.
NODE=$(curl -sf "${BASE}/healthz" | jq -r .node_id)
[[ "${NODE}" == smoke-n1 ]] || fail "/healthz node_id=${NODE} (want smoke-n1)"
NODE=$(curl -sf "${BASE}/stats" | jq -r .node_id)
[[ "${NODE}" == smoke-n1 ]] || fail "/stats node_id=${NODE} (want smoke-n1)"
echo "smoke: daemon identifies as smoke-n1"

# --- first submission: executes for real -----------------------------
CODE1=$(curl -s -o "${WORK}/sub1.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "${SPEC}" "${BASE}/jobs")
[[ "${CODE1}" == 202 ]] || fail "first submit returned HTTP ${CODE1} (want 202): $(cat "${WORK}/sub1.json")"
ID1=$(jq -r .id "${WORK}/sub1.json")
echo "smoke: submitted ${ID1}"

for i in $(seq 1 300); do
  STATE=$(curl -sf "${BASE}/jobs/${ID1}" | jq -r .state)
  [[ "${STATE}" == done ]] && break
  [[ "${STATE}" == failed || "${STATE}" == cancelled ]] && fail "job ${ID1} settled as ${STATE}"
  [[ "$i" == 300 ]] && fail "job ${ID1} never finished (state ${STATE})"
  sleep 0.1
done
echo "smoke: ${ID1} done"

CODE=$(curl -s -o "${WORK}/report1.json" -w '%{http_code}' "${BASE}/jobs/${ID1}/report")
[[ "${CODE}" == 200 ]] || fail "report fetch returned HTTP ${CODE}"
jq -e . "${WORK}/report1.json" >/dev/null || fail "report is not valid JSON"

# --- event stream: full replay ends with an "end" record -------------
curl -sf "${BASE}/jobs/${ID1}/events" >"${WORK}/events.ndjson"
PROGRESS=$(grep -c '"type":"progress"' "${WORK}/events.ndjson") || true
tail -1 "${WORK}/events.ndjson" | jq -e '.type == "end" and .state == "done"' >/dev/null \
  || fail "event stream did not end cleanly: $(tail -1 "${WORK}/events.ndjson")"
[[ "${PROGRESS}" -gt 0 ]] || fail "event stream replayed no progress lines"
echo "smoke: event stream replayed ${PROGRESS} rounds"

# --- second submission: must be a cache hit, not a re-run ------------
CODE2=$(curl -s -o "${WORK}/sub2.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "${SPEC}" "${BASE}/jobs")
[[ "${CODE2}" == 200 ]] || fail "second submit returned HTTP ${CODE2} (want 200 cache hit): $(cat "${WORK}/sub2.json")"
jq -e '.cache_hit_now == true and .state == "done"' "${WORK}/sub2.json" >/dev/null \
  || fail "second submit was not a cache hit: $(cat "${WORK}/sub2.json")"
ID2=$(jq -r .id "${WORK}/sub2.json")

CODE=$(curl -s -o "${WORK}/report2.json" -w '%{http_code}' "${BASE}/jobs/${ID2}/report")
[[ "${CODE}" == 200 ]] || fail "cached report fetch returned HTTP ${CODE}"
cmp -s "${WORK}/report1.json" "${WORK}/report2.json" \
  || fail "cached report is not byte-identical to the executed one"

EXECS=$(curl -sf "${BASE}/stats" | jq -r .executions)
[[ "${EXECS}" == 1 ]] || fail "engine executed ${EXECS} times (want exactly 1)"
echo "smoke: cache hit verified (1 execution, byte-identical reports)"

# --- /metrics: the counters must tell the same story -----------------
# One admitted execution, one cache-hit submission, two finished jobs.
curl -sf "${BASE}/metrics" >"${WORK}/metrics.txt" || fail "GET /metrics failed"
metric() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "${WORK}/metrics.txt"; }

V=$(metric 'simd_executions_total') || fail "/metrics missing simd_executions_total"
[[ "${V}" == 1 ]] || fail "simd_executions_total=${V} (want 1)"
V=$(metric 'simd_cache_hits_total') || fail "/metrics missing simd_cache_hits_total"
[[ "${V}" == 1 ]] || fail "simd_cache_hits_total=${V} (want 1)"
V=$(metric 'simd_submissions_total{outcome="admitted"}') || fail "/metrics missing admitted submissions"
[[ "${V}" == 1 ]] || fail "admitted submissions=${V} (want 1)"
V=$(metric 'simd_submissions_total{outcome="cache_hit"}') || fail "/metrics missing cache_hit submissions"
[[ "${V}" == 1 ]] || fail "cache_hit submissions=${V} (want 1)"
V=$(metric 'simd_jobs{state="done"}') || fail "/metrics missing done-jobs gauge"
[[ "${V}" == 2 ]] || fail "done jobs=${V} (want 2)"
V=$(metric 'simd_jobs_finished_total{state="done"}') || fail "/metrics missing finished-jobs counter"
[[ "${V}" == 2 ]] || fail "finished done jobs=${V} (want 2)"
grep -q '^simd_engine_events_committed_total [1-9]' "${WORK}/metrics.txt" \
  || fail "engine committed-events counter never moved"
echo "smoke: /metrics agrees (1 execution, 1 cache hit, 2 done jobs)"

# --- flight recorder of the completed job ----------------------------
CODE=$(curl -s -o "${WORK}/flight.json" -w '%{http_code}' "${BASE}/jobs/${ID1}/flight")
[[ "${CODE}" == 200 ]] || fail "flight fetch returned HTTP ${CODE}"
jq -e '.state == "done" and .rounds_total > 0 and (.recent | length) > 0' "${WORK}/flight.json" >/dev/null \
  || fail "flight record incomplete: $(cat "${WORK}/flight.json")"
FLIGHT_ROUNDS=$(jq -r .rounds_total "${WORK}/flight.json")
[[ "${FLIGHT_ROUNDS}" == "${PROGRESS}" ]] \
  || fail "flight rounds_total=${FLIGHT_ROUNDS} != streamed progress lines ${PROGRESS}"
echo "smoke: flight recorder holds ${FLIGHT_ROUNDS} rounds for ${ID1}"

# --- graceful shutdown ----------------------------------------------
kill -TERM "${SIMD_PID}"
for i in $(seq 1 100); do
  kill -0 "${SIMD_PID}" 2>/dev/null || break
  [[ "$i" == 100 ]] && fail "daemon ignored SIGTERM"
  sleep 0.1
done
wait "${SIMD_PID}" || fail "daemon exited non-zero"
SIMD_PID=""
echo "smoke: PASS"
