#!/usr/bin/env bash
# Durability smoke test for cmd/simd's persistent store + warm-restart
# journal (three daemon generations on one store directory):
#   gen 1: complete one job, catch a second mid-run, kill -9 the daemon.
#   gen 2: the completed result is a store hit — byte-identical, zero
#          re-execution; the interrupted job is re-enqueued from the
#          journal (/stats .recovered). Then the store's disk is broken
#          out from under it: jobs keep succeeding from memory, /healthz
#          flips to "degraded", /metrics shows simd_store_degraded 1.
#   gen 3: disk repaired but one entry corrupted on disk; the corrupt
#          entry is quarantined (never served) and recomputed to the
#          same bytes; -job-deadline fails an over-budget job with a
#          deadline error.
# Needs: go, curl, jq. Used by `make durability-smoke` and the CI
# service job.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=durability-smoke
. scripts/smoke_lib.sh
smoke_init

PORT="${DURABILITY_SMOKE_PORT:-18100}"
BASE="http://127.0.0.1:${PORT}"
LOG="${SMOKE_LOG_DIR}/simd.log"
STORE="${WORK}/store"
SPEC_DONE='{"model":"phold","nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":10,"seed":42}'
SPEC_SLOW='{"model":"phold","nodes":4,"workers_per_node":4,"lps_per_worker":64,"end_time":5000,"seed":7}'

start_daemon() { # extra args appended to the common flags
  "${WORK}/simd" -addr "127.0.0.1:${PORT}" -store-dir "${STORE}" -workers 2 "$@" \
    >>"${LOG}" 2>&1 &
  SIMD_PID=$!
  smoke_track "${SIMD_PID}"
  wait_healthy "${BASE}" "${SIMD_PID}" "${LOG}"
}

submit() { submit_spec "${BASE}" "$1" "$2"; }

wait_state() { wait_job_state "${BASE}" "$1" "$2"; }

echo "durability-smoke: building cmd/simd"
go build -o "${WORK}/simd" ./cmd/simd

# --- generation 1: seed the store, then die mid-run -------------------
echo "durability-smoke: gen 1 on ${BASE} (store ${STORE})"
start_daemon

CODE=$(submit "${SPEC_DONE}" "${WORK}/sub1.json")
[[ "${CODE}" == 202 ]] || fail "submit returned HTTP ${CODE}: $(cat "${WORK}/sub1.json")"
ID1=$(jq -r .id "${WORK}/sub1.json")
wait_state "${ID1}" done
curl -sf "${BASE}/jobs/${ID1}/report" >"${WORK}/report1.json" || fail "report fetch failed"

CODE=$(submit "${SPEC_SLOW}" "${WORK}/sub2.json")
[[ "${CODE}" == 202 ]] || fail "slow submit returned HTTP ${CODE}"
wait_state "$(jq -r .id "${WORK}/sub2.json")" running

echo "durability-smoke: kill -9 mid-run"
kill -9 "${SIMD_PID}"
wait "${SIMD_PID}" 2>/dev/null || true

# --- generation 2: warm restart ---------------------------------------
echo "durability-smoke: gen 2 warm restart"
start_daemon

RECOVERED=$(curl -sf "${BASE}/stats" | jq -r .recovered)
[[ "${RECOVERED}" == 1 ]] || fail "recovered=${RECOVERED} (want 1: the interrupted job)"

CODE=$(submit "${SPEC_DONE}" "${WORK}/sub3.json")
[[ "${CODE}" == 200 ]] || fail "post-restart resubmit returned HTTP ${CODE} (want 200 hit)"
jq -e '.cache_hit_now == true and .store_hit == true and .state == "done"' "${WORK}/sub3.json" >/dev/null \
  || fail "resubmit after kill -9 was not a store hit: $(cat "${WORK}/sub3.json")"
ID3=$(jq -r .id "${WORK}/sub3.json")
curl -sf "${BASE}/jobs/${ID3}/report" >"${WORK}/report3.json" || fail "store-hit report fetch failed"
cmp -s "${WORK}/report1.json" "${WORK}/report3.json" \
  || fail "store-hit report is not byte-identical across the crash"

EXECS=$(curl -sf "${BASE}/stats" | jq -r .executions)
[[ "${EXECS}" == 1 ]] || fail "executions=${EXECS} after restart (want 1: only the recovered job re-runs)"
echo "durability-smoke: store hit verified across kill -9 (byte-identical, 0 re-executions)"

# --- degraded mode: break the disk, keep serving ----------------------
# objects becomes a regular file, so every store read and publish fails
# with ENOTDIR — an infrastructure fault, which works even when the
# smoke runs as root (chmod tricks don't).
mv "${STORE}/objects" "${STORE}/objects.bak"
echo "not a directory" >"${STORE}/objects"

for SEED in 201 202 203; do
  SPEC="{\"model\":\"phold\",\"nodes\":2,\"workers_per_node\":2,\"lps_per_worker\":8,\"end_time\":10,\"seed\":${SEED}}"
  CODE=$(submit "${SPEC}" "${WORK}/deg.json")
  [[ "${CODE}" == 202 ]] || fail "degraded-phase submit returned HTTP ${CODE}"
  wait_state "$(jq -r .id "${WORK}/deg.json")" done
done

STATUS=$(curl -sf "${BASE}/healthz" | jq -r .status)
[[ "${STATUS}" == degraded ]] || fail "healthz status=${STATUS} with a broken store (want degraded)"
curl -sf "${BASE}/metrics" >"${WORK}/metrics_deg.txt"
V=$(metric 'simd_store_degraded' "${WORK}/metrics_deg.txt") || fail "/metrics missing simd_store_degraded"
[[ "${V}" == 1 ]] || fail "simd_store_degraded=${V} (want 1)"
echo "durability-smoke: degraded mode verified (jobs succeed from memory, /healthz and /metrics agree)"

kill -9 "${SIMD_PID}"
wait "${SIMD_PID}" 2>/dev/null || true

# --- generation 3: repaired disk, corrupt entry, job deadline ---------
rm "${STORE}/objects"
mv "${STORE}/objects.bak" "${STORE}/objects"
OBJ=$(find "${STORE}/objects" -type f | head -1)
[[ -n "${OBJ}" ]] || fail "no object file survived to corrupt"
echo "flipped bits, not a simdstore entry" >"${OBJ}"

echo "durability-smoke: gen 3 with a corrupt entry and -job-deadline"
start_daemon -job-deadline 500ms

# The corrupt entry must never be served: the resubmission quarantines
# it, re-executes, and lands on the same canonical bytes.
CODE=$(submit "${SPEC_DONE}" "${WORK}/sub4.json")
[[ "${CODE}" == 202 ]] || fail "corrupt-entry resubmit returned HTTP ${CODE} (want 202 re-run, got a hit?)"
ID4=$(jq -r .id "${WORK}/sub4.json")
wait_state "${ID4}" done
curl -sf "${BASE}/jobs/${ID4}/report" >"${WORK}/report4.json"
cmp -s "${WORK}/report1.json" "${WORK}/report4.json" \
  || fail "recomputed report differs from the pre-corruption original"
curl -sf "${BASE}/metrics" >"${WORK}/metrics3.txt"
V=$(metric 'simd_store_quarantined_total' "${WORK}/metrics3.txt") || fail "/metrics missing quarantine counter"
[[ "${V}" -ge 1 ]] || fail "simd_store_quarantined_total=${V} (want >=1)"
find "${STORE}/quarantine" -type f | grep -q . || fail "quarantine directory is empty"
echo "durability-smoke: corrupt entry quarantined and recomputed identically"

# Wall-clock deadline: an over-budget job fails and says why. (The
# journal-recovered slow job from gen 2 fails the same way here.)
CODE=$(submit "${SPEC_SLOW/\"seed\":7/\"seed\":8}" "${WORK}/sub5.json")
[[ "${CODE}" == 202 ]] || fail "deadline-phase submit returned HTTP ${CODE}"
ID5=$(jq -r .id "${WORK}/sub5.json")
wait_state "${ID5}" failed
curl -sf "${BASE}/jobs/${ID5}" | jq -e '.error | contains("deadline")' >/dev/null \
  || fail "deadline failure does not say so: $(curl -s "${BASE}/jobs/${ID5}")"
curl -sf "${BASE}/metrics" >"${WORK}/metrics4.txt"
V=$(metric 'simd_job_deadline_exceeded_total' "${WORK}/metrics4.txt") || fail "/metrics missing deadline counter"
[[ "${V}" -ge 1 ]] || fail "simd_job_deadline_exceeded_total=${V} (want >=1)"
echo "durability-smoke: wall-clock deadline enforced"

# --- graceful shutdown ------------------------------------------------
graceful_stop "${SIMD_PID}"
echo "durability-smoke: PASS"
