#!/usr/bin/env bash
# Observability smoke test for cmd/simd + cmd/simtop: exercises the
# paths the service smoke doesn't — a *running* job seen live, a
# post-mortem of a cancelled one, and the debug listener.
#   - start simd with -debug-addr and debug-level JSON logs,
#   - submit a long PHOLD job and scrape /metrics mid-run: a running
#     job is visible, workers are busy, engine counters are moving,
#   - cancel the job and fetch /jobs/{id}/flight: the flight recorder
#     still holds its recent rounds (the post-mortem use case),
#   - /debug/pprof/ and the debug /metrics mount respond,
#   - simtop -once renders a frame against the live daemon,
#   - every structured log line is valid JSON and SIGTERM drains clean.
# Needs: go, curl, jq. Used by `make obs-smoke` and the CI service job.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=obs-smoke
. scripts/smoke_lib.sh
smoke_init

PORT="${OBS_SMOKE_PORT:-18090}"
DBG_PORT="${OBS_SMOKE_DEBUG_PORT:-18091}"
BASE="http://127.0.0.1:${PORT}"
DBG="http://127.0.0.1:${DBG_PORT}"
LOG="${SMOKE_LOG_DIR}/simd.log"
# Big enough to run for a while: we need to catch it mid-flight.
LONG_SPEC='{"model":"phold","nodes":4,"workers_per_node":4,"lps_per_worker":64,"end_time":2000,"seed":7}'

echo "obs-smoke: building cmd/simd and cmd/simtop"
go build -o "${WORK}/simd" ./cmd/simd
go build -o "${WORK}/simtop" ./cmd/simtop

echo "obs-smoke: starting simd on ${BASE} (debug ${DBG})"
"${WORK}/simd" -addr "127.0.0.1:${PORT}" -debug-addr "127.0.0.1:${DBG_PORT}" \
  -workers 2 -log-level debug -log-format json >"${LOG}" 2>&1 &
SIMD_PID=$!
smoke_track "${SIMD_PID}"
wait_healthy "${BASE}" "${SIMD_PID}" "${LOG}"

# healthz carries build identity.
curl -sf "${BASE}/healthz" | jq -e '.status == "ok" and (.build.go_version | length) > 0' >/dev/null \
  || fail "healthz has no build info: $(curl -s "${BASE}/healthz")"

# --- long job: observe it while it runs ------------------------------
CODE=$(submit_spec "${BASE}" "${LONG_SPEC}" "${WORK}/sub.json")
[[ "${CODE}" == 202 ]] || fail "submit returned HTTP ${CODE}: $(cat "${WORK}/sub.json")"
ID=$(jq -r .id "${WORK}/sub.json")
echo "obs-smoke: submitted long job ${ID}"

wait_job_state "${BASE}" "${ID}" running
# Let a few GVT rounds land in the flight ring before we look.
sleep 1

curl -sf "${BASE}/metrics" >"${WORK}/metrics_mid.txt" || fail "mid-run GET /metrics failed"

V=$(metric 'simd_jobs{state="running"}' "${WORK}/metrics_mid.txt") || fail "no running-jobs gauge"
[[ "${V}" == 1 ]] || fail "running jobs=${V} mid-run (want 1)"
V=$(metric 'simd_workers_busy' "${WORK}/metrics_mid.txt") || fail "no workers-busy gauge"
[[ "${V}" == 1 ]] || fail "busy workers=${V} mid-run (want 1)"
grep -q '^simd_engine_gvt_rounds_total [1-9]' "${WORK}/metrics_mid.txt" \
  || fail "engine rounds counter flat while a job is running"
grep -q '^simd_engine_events_processed_total [1-9]' "${WORK}/metrics_mid.txt" \
  || fail "engine processed-events counter flat while a job is running"
echo "obs-smoke: mid-run scrape sees the running job and moving engine counters"

# /stats mirrors the same picture.
curl -sf "${BASE}/stats" | jq -e '.workers_busy == 1 and .uptime_seconds > 0' >/dev/null \
  || fail "/stats disagrees mid-run: $(curl -s "${BASE}/stats")"

# --- debug listener: pprof and the second /metrics mount -------------
curl -sf "${DBG}/debug/pprof/" >/dev/null || fail "debug pprof index unreachable"
curl -sf "${DBG}/debug/pprof/cmdline" >/dev/null || fail "pprof cmdline unreachable"
curl -sf "${DBG}/metrics" | grep -q '^simd_build_info' || fail "debug /metrics mount broken"
echo "obs-smoke: debug listener serves pprof and metrics"

# --- simtop renders a frame against the live daemon ------------------
"${WORK}/simtop" -addr "${BASE}" -once >"${WORK}/simtop.txt" || fail "simtop -once failed"
grep -q "simtop — ${BASE}" "${WORK}/simtop.txt" || fail "simtop frame missing header"
grep -q "${ID}" "${WORK}/simtop.txt" || fail "simtop frame does not list job ${ID}"
echo "obs-smoke: simtop rendered the running job"

# --- cancel, then read the post-mortem from the flight recorder ------
curl -sf -X DELETE "${BASE}/jobs/${ID}" >/dev/null || fail "cancel failed"
for i in $(seq 1 100); do
  STATE=$(curl -sf "${BASE}/jobs/${ID}" | jq -r .state)
  [[ "${STATE}" == cancelled ]] && break
  [[ "$i" == 100 ]] && fail "job never settled after cancel (state ${STATE})"
  sleep 0.1
done

CODE=$(curl -s -o "${WORK}/flight.json" -w '%{http_code}' "${BASE}/jobs/${ID}/flight")
[[ "${CODE}" == 200 ]] || fail "flight fetch returned HTTP ${CODE}"
jq -e '.state == "cancelled" and .retained == true and .rounds_total > 0 and (.recent | length) > 0 and .gvt > 0' \
  "${WORK}/flight.json" >/dev/null \
  || fail "cancelled job's flight record incomplete: $(cat "${WORK}/flight.json")"
echo "obs-smoke: flight recorder kept $(jq -r '.recent | length' "${WORK}/flight.json") rounds of the cancelled job (gvt $(jq -r .gvt "${WORK}/flight.json"))"

# Cancelled jobs count as finished in the metrics.
curl -sf "${BASE}/metrics" >"${WORK}/metrics_end.txt"
V=$(metric 'simd_jobs_finished_total{state="cancelled"}' "${WORK}/metrics_end.txt") || fail "no cancelled-finished counter"
[[ "${V}" == 1 ]] || fail "cancelled finished jobs=${V} (want 1)"

# --- structured logs: every line is JSON with the expected shape -----
graceful_stop "${SIMD_PID}"

jq -es 'length > 0' "${LOG}" >/dev/null \
  || fail "log output is not line-delimited JSON: $(head -3 "${LOG}")"
jq -es 'map(select(.msg == "job admitted")) | length == 1' "${LOG}" >/dev/null \
  || fail "no 'job admitted' log line"
jq -es 'map(select(.msg == "job finished" and .state == "cancelled")) | length == 1' "${LOG}" >/dev/null \
  || fail "no cancelled 'job finished' log line"
jq -es 'map(select(.level == "DEBUG" and .msg == "http request")) | length > 0' "${LOG}" >/dev/null \
  || fail "no access-log lines at debug level"
echo "obs-smoke: structured logs check out ($(wc -l < "${LOG}") JSON lines)"
echo "obs-smoke: PASS"
