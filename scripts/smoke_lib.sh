# scripts/smoke_lib.sh — shared plumbing for the smoke tests. Not a
# program: source it.
#
#   SMOKE_NAME=my-smoke
#   . "$(dirname "$0")/smoke_lib.sh"
#   smoke_init
#   "${WORK}/simd" ... >"${SMOKE_LOG_DIR}/simd.log" 2>&1 &
#   smoke_track "$!"
#   wait_healthy "${BASE}" "$!" "${SMOKE_LOG_DIR}/simd.log"
#
# smoke_init creates a throwaway ${WORK} directory and installs an
# EXIT/INT/TERM trap that reaps every smoke_track'ed daemon (TERM
# first, KILL if it lingers) and removes ${WORK} — whether the script
# passes, fails, or is interrupted.
#
# SMOKE_LOG_DIR is where daemon logs belong. CI points it at an
# artifact directory so logs survive the workspace cleanup and get
# uploaded when the smoke fails; it defaults to ${WORK} (logs vanish
# with the workspace).

SMOKE_NAME="${SMOKE_NAME:-smoke}"
SMOKE_PIDS=()

fail() { echo "${SMOKE_NAME}: FAIL: $*" >&2; exit 1; }

smoke_init() {
  WORK="$(mktemp -d)"
  SMOKE_LOG_DIR="${SMOKE_LOG_DIR:-${WORK}}"
  mkdir -p "${SMOKE_LOG_DIR}"
  trap smoke_cleanup EXIT INT TERM
}

# smoke_track registers a just-started background PID for cleanup.
# Track every daemon you start; reaping an already-dead PID is a no-op,
# so scripted kill -9s and graceful stops need no untracking.
smoke_track() { SMOKE_PIDS+=("$1"); }

smoke_reap_pid() {
  local pid="$1"
  kill "${pid}" 2>/dev/null || true
  for _ in $(seq 1 20); do
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.2
  done
  kill -9 "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
}

smoke_cleanup() {
  local pid
  for pid in ${SMOKE_PIDS[@]+"${SMOKE_PIDS[@]}"}; do
    smoke_reap_pid "${pid}"
  done
  [[ -n "${WORK:-}" ]] && rm -rf "${WORK}"
}

# wait_healthy BASE PID LOG polls /healthz until the daemon answers,
# failing fast — with the log echoed — when the process died on boot.
wait_healthy() {
  local base="$1" pid="$2" log="$3" i
  for i in $(seq 1 100); do
    curl -sf "${base}/healthz" >/dev/null 2>&1 && return 0
    kill -0 "${pid}" 2>/dev/null || { cat "${log}" >&2; fail "daemon died on startup"; }
    [[ "$i" == 100 ]] && fail "daemon never became healthy"
    sleep 0.1
  done
}

# graceful_stop PID sends SIGTERM and requires a prompt, clean exit.
graceful_stop() {
  local pid="$1" i
  kill -TERM "${pid}"
  for i in $(seq 1 100); do
    kill -0 "${pid}" 2>/dev/null || break
    [[ "$i" == 100 ]] && fail "daemon ignored SIGTERM"
    sleep 0.1
  done
  wait "${pid}" || fail "daemon exited non-zero"
}

# submit_spec BASE SPEC OUT posts a job spec, writes the response body
# to OUT and echoes the HTTP status code.
submit_spec() {
  curl -s -o "$3" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -d "$2" "$1/jobs"
}

# wait_job_state BASE ID WANT polls one job until it reaches WANT,
# failing when it settles in any other terminal state first.
wait_job_state() {
  local base="$1" id="$2" want="$3" state i
  for i in $(seq 1 300); do
    state=$(curl -sf "${base}/jobs/${id}" | jq -r .state)
    [[ "${state}" == "${want}" ]] && return 0
    case "${state}" in done|failed|cancelled)
      fail "job ${id} settled as ${state} (want ${want}): $(curl -s "${base}/jobs/${id}")";;
    esac
    [[ "$i" == 300 ]] && fail "job ${id} never reached ${want} (state ${state})"
    sleep 0.1
  done
}

# metric NAME FILE prints one sample from a Prometheus text dump;
# non-zero exit when the series is absent.
metric() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$2"; }
