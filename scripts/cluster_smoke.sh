#!/usr/bin/env bash
# End-to-end smoke test for the simd cluster (cmd/simdcluster): a
# 3-node cluster runs a job mix, loses one member to kill -9 mid-run,
# and must not lose a single job —
#   - queued and running work re-dispatches to live replicas,
#   - completed reports stay serveable byte-identically through the
#     shared store after their owning node dies,
#   - repeat submissions are cache hits with zero re-execution,
#   - cluster /stats totals equal the per-node sum.
# The scenario lives in TestClusterSmoke (cmd/simdcluster/main_test.go),
# which spawns the real router and member binaries; this script is the
# CI/make entry point for it. Needs: go.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=cluster-smoke
. scripts/smoke_lib.sh
smoke_init

# The Go test owns its own process lifecycle; the lib supplies fail()
# and the log-dir contract (CI uploads the transcript on failure).
LOG="${SMOKE_LOG_DIR}/cluster_smoke_test.log"

echo "cluster-smoke: running TestClusterSmoke against real processes"
go test -run 'TestClusterSmoke$' -count=1 -v -timeout 10m ./cmd/simdcluster 2>&1 | tee "${LOG}" \
  || fail "TestClusterSmoke failed (transcript: ${LOG})"
echo "cluster-smoke: PASS"
