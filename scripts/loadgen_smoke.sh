#!/usr/bin/env bash
# Load-generator smoke test for cmd/loadgen against a live cmd/simd:
#   phase A: duplicate-heavy mix on a 2-worker daemon — the content
#            cache must absorb the repeats (cache-hit ratio >= 0.8,
#            engine executions == the distinct-spec count) with no lost
#            or failed requests, graded by loadgen's own SLO gate.
#   phase B: distinct-heavy mix against a 1-worker, queue-2 daemon —
#            admission control must push back (>= 1 honored 429) and
#            still execute every unique spec exactly once, losing
#            nothing.
#   phase C: the gate itself — an SLO that cannot hold (demanding 429s
#            from a duplicate mix that never queues) must make loadgen
#            exit 1, and the JSON summary must name the failed SLO.
# Needs: go, curl, jq. Used by `make loadgen-smoke` and the CI service
# job.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=loadgen-smoke
. scripts/smoke_lib.sh
smoke_init

PORT="${LOADGEN_SMOKE_PORT:-18110}"
BASE="http://127.0.0.1:${PORT}"

echo "loadgen-smoke: building cmd/simd and cmd/loadgen"
go build -o "${WORK}/simd" ./cmd/simd
go build -o "${WORK}/loadgen" ./cmd/loadgen

# --- phase A: duplicate-heavy — the cache absorbs the load ------------
LOG_A="${SMOKE_LOG_DIR}/simd_a.log"
echo "loadgen-smoke: phase A — duplicate mix on ${BASE} (2 workers)"
"${WORK}/simd" -addr "127.0.0.1:${PORT}" -workers 2 -cachesize 64 >"${LOG_A}" 2>&1 &
PID_A=$!
smoke_track "${PID_A}"
wait_healthy "${BASE}" "${PID_A}" "${LOG_A}"

"${WORK}/loadgen" -addr "${BASE}" -mix duplicate -n 60 -distinct 3 -rps 200 \
  -slo-cache-hit-min 0.8 -slo-exact-executions 3 -slo-p99-max 60s \
  -timeout 100s >"${WORK}/summary_a.json" \
  || fail "phase A loadgen reported failure: $(cat "${WORK}/summary_a.json")"
jq -e '.requests == 60 and .completed == 60 and .lost == 0 and .failed == 0' \
  "${WORK}/summary_a.json" >/dev/null \
  || fail "phase A summary lost results: $(cat "${WORK}/summary_a.json")"
jq -e '.cache_hit_ratio >= 0.8 and .executions_delta == 3' "${WORK}/summary_a.json" >/dev/null \
  || fail "phase A cache did not absorb the duplicates: $(cat "${WORK}/summary_a.json")"
echo "loadgen-smoke: phase A PASS (ratio $(jq -r .cache_hit_ratio "${WORK}/summary_a.json"), 3 executions for 60 requests)"
graceful_stop "${PID_A}"

# --- phase B: distinct-heavy — admission control pushes back ----------
LOG_B="${SMOKE_LOG_DIR}/simd_b.log"
echo "loadgen-smoke: phase B — distinct mix on ${BASE} (1 worker, queue 2)"
"${WORK}/simd" -addr "127.0.0.1:${PORT}" -workers 1 -queue 2 -cachesize 64 >"${LOG_B}" 2>&1 &
PID_B=$!
smoke_track "${PID_B}"
wait_healthy "${BASE}" "${PID_B}" "${LOG_B}"

"${WORK}/loadgen" -addr "${BASE}" -mix distinct -n 12 -rps 200 -seed-base 100 \
  -slo-min-429 1 -slo-exact-executions 12 \
  -timeout 100s >"${WORK}/summary_b.json" \
  || fail "phase B loadgen reported failure: $(cat "${WORK}/summary_b.json")"
jq -e '.requests == 12 and .completed == 12 and .lost == 0 and .failed == 0' \
  "${WORK}/summary_b.json" >/dev/null \
  || fail "phase B lost or duplicated results: $(cat "${WORK}/summary_b.json")"
jq -e '.honored_429 >= 1 and .executions_delta == 12' "${WORK}/summary_b.json" >/dev/null \
  || fail "phase B saw no honored backpressure: $(cat "${WORK}/summary_b.json")"
echo "loadgen-smoke: phase B PASS ($(jq -r .rejected_429 "${WORK}/summary_b.json") x 429, $(jq -r .honored_429 "${WORK}/summary_b.json") honored, 12/12 executed)"

# --- phase C: a failing SLO must actually gate ------------------------
# A duplicate mix never fills the queue, so demanding >= 1 honored 429
# is unsatisfiable: loadgen must exit 1 (SLO violation), not 0 and not
# 2 (operational failure), and the summary must name the failed gate.
echo "loadgen-smoke: phase C — unsatisfiable SLO must exit 1"
RC=0
"${WORK}/loadgen" -addr "${BASE}" -mix duplicate -n 3 -distinct 1 -rps 50 -seed-base 999 \
  -slo-min-429 1 -timeout 100s >"${WORK}/summary_c.json" || RC=$?
[[ "${RC}" == 1 ]] || fail "phase C exit code ${RC} (want 1: SLO violation): $(cat "${WORK}/summary_c.json")"
jq -e '[.slos[] | select(.ok == false) | .name] == ["honored_429"]' "${WORK}/summary_c.json" >/dev/null \
  || fail "phase C summary does not single out the failed SLO: $(cat "${WORK}/summary_c.json")"
echo "loadgen-smoke: phase C PASS (gate fired, exit 1, honored_429 named)"

graceful_stop "${PID_B}"
echo "loadgen-smoke: PASS"
